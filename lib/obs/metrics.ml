(* Metrics registry: named counters and log2-bucketed latency histograms.

   [merge] is pure, associative and commutative, so per-shard registries
   from [Fuzzer.Parallel] combine into the same totals regardless of how
   the work-stealing scheduler carved up the iteration space. *)

let nbuckets = 64

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array; (* bucket i counts values v with 2^(i-1) < v <= 2^i-ish *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; hists = Hashtbl.create 16 }

let incr t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

(* index = number of significant bits of [v], i.e. bucket b holds values in
   [2^(b-1), 2^b).  Bucket 0 holds v <= 0 (shouldn't happen for latencies). *)
let bucket_of v =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  if v <= 0 then 0 else min (nbuckets - 1) (bits v 0)

let fresh_hist () =
  { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int;
    h_buckets = Array.make nbuckets 0 }

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = fresh_hist () in
        Hashtbl.replace t.hists name h;
        h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let hist t name = Hashtbl.find_opt t.hists name

let copy_hist h =
  { h with h_buckets = Array.copy h.h_buckets }

(* Pure merge: neither argument is mutated. *)
let merge a b =
  let t = create () in
  let add_counters src =
    Hashtbl.iter (fun k r -> incr t k !r) src.counters
  in
  add_counters a;
  add_counters b;
  let add_hists src =
    Hashtbl.iter
      (fun k h ->
        match Hashtbl.find_opt t.hists k with
        | None -> Hashtbl.replace t.hists k (copy_hist h)
        | Some acc ->
            acc.h_count <- acc.h_count + h.h_count;
            acc.h_sum <- acc.h_sum + h.h_sum;
            acc.h_min <- min acc.h_min h.h_min;
            acc.h_max <- max acc.h_max h.h_max;
            Array.iteri
              (fun i n -> acc.h_buckets.(i) <- acc.h_buckets.(i) + n)
              h.h_buckets)
      src.hists
  in
  add_hists a;
  add_hists b;
  t

(* Deterministic snapshots (sorted by name) for printing and comparison. *)
let counters_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let hists_list t =
  Hashtbl.fold
    (fun k h acc ->
      (k, (h.h_count, h.h_sum, h.h_min, h.h_max, Array.to_list h.h_buckets))
      :: acc)
    t.hists []
  |> List.sort compare

let equal a b = counters_list a = counters_list b && hists_list a = hists_list b

let quantile h q =
  (* upper edge of the bucket holding the q-quantile observation *)
  if h.h_count = 0 then 0
  else begin
    let target = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let target = max 1 (min h.h_count target) in
    let seen = ref 0 and res = ref h.h_max in
    (try
       Array.iteri
         (fun i n ->
           seen := !seen + n;
           if !seen >= target then begin
             res := (1 lsl i) - 1;
             raise Exit
           end)
         h.h_buckets
     with Exit -> ());
    min !res h.h_max
  end

(* {2 Derived datapath gauges}

   The file-system layer records one [op.<name>] latency observation per
   VFS call and, alongside it, [fences.<name>] and [bytes.<name>]
   observations carrying that call's sfence count and stored-byte count.
   The gauges below are pure ratios over those series — nothing extra is
   recorded, so shard merges keep them exact. *)

let hist_totals t name =
  match Hashtbl.find_opt t.hists name with
  | None -> (0, 0)
  | Some h -> (h.h_count, h.h_sum)

(* Mean sfences issued per <op> call, [None] if the op never ran. *)
let fences_per_op t op =
  let count, sum = hist_totals t ("fences." ^ op) in
  if count = 0 then None else Some (float_of_int sum /. float_of_int count)

(* Mean bytes stored per sfence within <op> calls, [None] if the op
   never fenced (e.g. reads). *)
let bytes_per_fence t op =
  let _, fences = hist_totals t ("fences." ^ op) in
  let _, bytes = hist_totals t ("bytes." ^ op) in
  if fences = 0 then None else Some (float_of_int bytes /. float_of_int fences)

(* Every op kind with a recorded [fences.*] series, sorted. *)
let datapath_ops t =
  Hashtbl.fold
    (fun k _ acc ->
      match String.index_opt k '.' with
      | Some i when String.sub k 0 i = "fences" ->
          String.sub k (i + 1) (String.length k - i - 1) :: acc
      | _ -> acc)
    t.hists []
  |> List.sort compare

let pp_datapath ppf t =
  List.iter
    (fun op ->
      let fpo = Option.value ~default:0. (fences_per_op t op) in
      let bpf = Option.value ~default:0. (bytes_per_fence t op) in
      Format.fprintf ppf "datapath %-24s fences/op=%.3f bytes/fence=%.1f@." op
        fpo bpf)
    (datapath_ops t)

let pp ppf t =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "counter %-32s %d@." k v)
    (counters_list t);
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists []
  |> List.sort compare
  |> List.iter (fun (k, h) ->
         Format.fprintf ppf
           "hist    %-32s count=%d mean=%dns min=%d max=%d p50<=%d p99<=%d@." k
           h.h_count
           (if h.h_count = 0 then 0 else h.h_sum / h.h_count)
           (if h.h_count = 0 then 0 else h.h_min)
           (if h.h_count = 0 then 0 else h.h_max)
           (quantile h 0.5) (quantile h 0.99))
