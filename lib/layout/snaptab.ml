module Device = Pmem.Device

(* On-volume snapshot metadata, all of it inside the tail of the
   superblock page (offset 0 .. sb_size): the superblock proper ends
   well before byte 128, so bytes [512, 4096) were durably zero on every
   existing volume — placing the snapshot table there changes no
   geometry, no existing record, and no historical observable (an
   all-zero table decodes as "no snapshots").

   Layout:
   - [intent_off, intent_off+128): the rollback intent record (its own
     two cache lines, so intent stores never share a line with slots).
   - [table_off, table_off+slots*slot_size) = [1024, 4096): the slot
     array, 24 slots of 128 bytes (two cache lines) each.

   Commit discipline mirrors the other records (SSU, paper §3.4): all
   init fields plus a CRC over the sealed (immutable) fields are made
   durable by a fence {e before} the single 8-byte state word is
   stored. A committed slot/intent therefore always carries a valid
   CRC; a nonzero-but-uncommitted one is a crash remnant that recovery
   rolls back by zeroing. *)

let intent_off = 512
let table_off = 1024
let slots = 24
let slot_size = 128
let name_max = 63

let slot_off slot =
  if slot < 0 || slot >= slots then
    invalid_arg (Printf.sprintf "Layout.Snaptab.slot_off: bad slot %d" slot);
  table_off + (slot * slot_size)

(* Snapshot names: nonempty, at most [name_max] bytes, no NUL (the
   on-volume field is NUL-padded) and no '/' (CLI path hygiene). *)
let valid_name s =
  let n = String.length s in
  n > 0 && n <= name_max
  && String.for_all (fun c -> c <> '\000' && c <> '/') s

let crc_ns = Records.crc_ns

let crc_of_ranges dev ~base ranges =
  List.fold_left
    (fun crc (off, len) ->
      let b = Device.read_meta dev ~off:(base + off) ~len in
      Faults.Crc32.digest_bytes ~crc b ~off:0 ~len)
    0 ranges

(* 64-bit stores/reads that keep all 64 bits (content hashes): OCaml's
   [int] is 63-bit, so the u64 helpers on [Device] cannot carry them. An
   aligned 8-byte [store] is a single record, hence crash-atomic. *)
let store_i64 dev off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Device.store dev ~off (Bytes.to_string b)

let read_i64 dev off = Bytes.get_int64_le (Device.read_meta dev ~off ~len:8) 0

module Slot = struct
  let f_state = 0 (* u64: 0 = free, 1 = committed; the atomic commit *)
  let f_id = 8 (* u64, monotonically increasing snapshot id *)
  let f_epoch = 16 (* u64, fence epoch at creation *)
  let f_hash = 24 (* i64 durable content hash at the creation fence *)
  let f_crc = 32 (* u32 over [sealed_ranges] *)
  let f_name = 40 (* [name_max]-byte NUL-padded name *)

  (* id, epoch, hash, then everything after the CRC word (padding +
     name + padding); the mutable state word and the CRC itself are
     excluded. *)
  let sealed_ranges = [ (8, 24); (36, 92) ]

  type t = { slot : int; id : int; epoch : int; hash : int64; name : string }

  let state dev ~slot = Device.read_u64 dev (slot_off slot + f_state)

  let is_free dev ~slot =
    not (Records.any_nonzero dev (slot_off slot) slot_size)

  let seal dev ~slot =
    let base = slot_off slot in
    Device.store_u32 dev (base + f_crc) (crc_of_ranges dev ~base sealed_ranges);
    Device.charge dev crc_ns

  let verify dev ~slot =
    let base = slot_off slot in
    Device.charge dev crc_ns;
    match crc_of_ranges dev ~base sealed_ranges with
    | crc -> crc = Device.read_u32 dev (base + f_crc)
    | exception Device.Media_error _ -> false

  (* Store every init field plus the CRC and flush them; the caller
     fences, then calls [commit]. The state word stays zero here. *)
  let write_init dev ~slot ~id ~epoch ~hash ~name =
    if not (valid_name name) then
      invalid_arg "Layout.Snaptab.Slot.write_init: bad name";
    let base = slot_off slot in
    Device.store_u64 dev (base + f_id) id;
    Device.store_u64 dev (base + f_epoch) epoch;
    store_i64 dev (base + f_hash) hash;
    let padded = Bytes.make (name_max + 1) '\000' in
    Bytes.blit_string name 0 padded 0 (String.length name);
    Device.store dev ~off:(base + f_name) (Bytes.to_string padded);
    seal dev ~slot;
    Device.flush dev ~off:base ~len:slot_size

  (* Atomic publish: store + flush only — the caller issues the fence
     (orchestration layers fence through [Fsctx.fence] so epoch hooks
     fire). *)
  let commit dev ~slot =
    Device.store_u64 dev (slot_off slot + f_state) 1;
    Device.flush dev ~off:(slot_off slot + f_state) ~len:8

  (* First half of a crash-safe delete: atomically un-commit the slot.
     After the caller's fence the slot is a nonzero-uncommitted remnant
     (recovery zeroes it), so no crash point shows a torn committed
     entry. *)
  let uncommit dev ~slot =
    Device.store_u64 dev (slot_off slot + f_state) 0;
    Device.flush dev ~off:(slot_off slot + f_state) ~len:8

  let clear dev ~slot =
    Device.zero dev ~off:(slot_off slot) ~len:slot_size

  let decode dev ~slot =
    let base = slot_off slot in
    if Device.read_u64 dev (base + f_state) <> 1 then None
    else
      let raw =
        Bytes.to_string (Device.read_meta dev ~off:(base + f_name) ~len:name_max)
      in
      let name =
        match String.index_opt raw '\000' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      Some
        {
          slot;
          id = Device.read_u64 dev (base + f_id);
          epoch = Device.read_u64 dev (base + f_epoch);
          hash = read_i64 dev (base + f_hash);
          name;
        }
end

(* Committed slots, ascending by slot index. *)
let list dev =
  let rec go slot acc =
    if slot >= slots then List.rev acc
    else
      match Slot.decode dev ~slot with
      | Some s -> go (slot + 1) (s :: acc)
      | None -> go (slot + 1) acc
  in
  go 0 []

let find dev name =
  List.find_opt (fun (s : Slot.t) -> s.name = name) (list dev)

let free_slot dev =
  let rec go slot =
    if slot >= slots then None
    else if Slot.is_free dev ~slot then Some slot
    else go (slot + 1)
  in
  go 0

let next_id dev =
  1 + List.fold_left (fun m (s : Slot.t) -> max m s.id) 0 (list dev)

(* {1 Rollback intent}

   Redo-log commit record for atomic rollback: once the intent's state
   word is durable, recovery replays the chained log pages (restoring
   the pinned image) and then clears the intent; before that, a crash
   leaves the pre-rollback state and recovery just zeroes the partial
   intent. Either way, no crash point exposes a half-restored volume. *)

module Intent = struct
  let f_state = 0 (* u64: 0 = none, 1 = committed *)
  let f_slot = 8 (* u64, slot being rolled back to *)
  let f_log = 16 (* u64, first log page index + 1 *)
  let f_count = 24 (* u64, total log entries across the chain *)
  let f_crc = 32 (* u32 over [sealed_ranges] *)
  let sealed_ranges = [ (8, 24); (36, 92) ]

  type t = { slot : int; log_page : int; count : int }

  let state dev = Device.read_u64 dev (intent_off + f_state)

  let is_free dev = not (Records.any_nonzero dev intent_off slot_size)

  let seal dev =
    let base = intent_off in
    Device.store_u32 dev (base + f_crc) (crc_of_ranges dev ~base sealed_ranges);
    Device.charge dev crc_ns

  let verify dev =
    let base = intent_off in
    Device.charge dev crc_ns;
    match crc_of_ranges dev ~base sealed_ranges with
    | crc -> crc = Device.read_u32 dev (base + f_crc)
    | exception Device.Media_error _ -> false

  let write_init dev ~slot ~log_page ~count =
    let base = intent_off in
    Device.store_u64 dev (base + f_slot) slot;
    Device.store_u64 dev (base + f_log) (log_page + 1);
    Device.store_u64 dev (base + f_count) count;
    seal dev;
    Device.flush dev ~off:base ~len:slot_size

  (* Store + flush only; the caller's fence is the rollback commit
     point. *)
  let commit dev =
    Device.store_u64 dev (intent_off + f_state) 1;
    Device.flush dev ~off:(intent_off + f_state) ~len:8

  let uncommit dev =
    Device.store_u64 dev (intent_off + f_state) 0;
    Device.flush dev ~off:(intent_off + f_state) ~len:8

  let clear dev = Device.zero dev ~off:intent_off ~len:slot_size

  let decode dev =
    if state dev <> 1 then None
    else
      Some
        {
          slot = Device.read_u64 dev (intent_off + f_slot);
          log_page = Device.read_u64 dev (intent_off + f_log) - 1;
          count = Device.read_u64 dev (intent_off + f_count);
        }
end

(* {1 Redo-log pages}

   Chained data pages holding [(off, 64-byte pre-image)] entries. Log
   pages are never described (their descriptors stay zero), so they are
   invisible to fsck and the mount scan, and the allocator rebuild
   reclaims them automatically once the intent is gone. *)

module Log = struct
  let f_next = 0 (* u64, next log page index + 1; 0 = end of chain *)
  let f_count = 8 (* u64, entries in this page *)
  let header_size = 16
  let entry_size = 8 + Device.line_size
  let entries_per_page = (Geometry.page_size - header_size) / entry_size

  let entry_off ~page_base i = page_base + header_size + (i * entry_size)

  let write_entry dev ~page_base i ~off data =
    let base = entry_off ~page_base i in
    Device.store_u64 dev base off;
    Device.store dev ~off:(base + 8) data

  let read_entry dev ~page_base i =
    let base = entry_off ~page_base i in
    let off = Device.read_u64 dev base in
    let data =
      Bytes.to_string (Device.read_meta dev ~off:(base + 8) ~len:Device.line_size)
    in
    (off, data)
end
