(** SquirrelFS on-PM layout: geometry and record formats. *)

module Geometry = Geometry
module Records = Records
module Snaptab = Snaptab
