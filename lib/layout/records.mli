(** Field offsets and decoders for SquirrelFS's persistent records.

    Writes to these records are performed by the typestate transition
    functions in the core library; this module only fixes the binary
    format and provides read-side decoding. An object is {e allocated} iff
    any of its bytes is non-zero; dentries and page descriptors are
    {e valid} iff their inode-number field is non-zero (paper §3.4).

    When a volume is made with [mkfs ~csum:true], inode and descriptor
    records additionally carry a CRC32 over their {e sealed}
    (immutable-after-init) fields, written by [seal] during
    initialization. Because SSU ordering makes the whole init group —
    including the CRC — durable before the record is committed, [verify]
    failing on a committed record can only mean media corruption, never a
    legal crash state. Mutable fields (links, sizes, times, commit
    backpointers, dentries) are excluded and covered by the device-level
    line ECC instead. *)

module Kind : sig
  type t = File | Dir | Symlink

  val to_int : t -> int
  val of_int : int -> t option
  val pp : Format.formatter -> t -> unit
end

val any_nonzero : Pmem.Device.t -> int -> int -> bool
(** [any_nonzero dev base len]: is any byte of [base, base+len) nonzero
    (i.e. is a record at [base] allocated)? *)

val crc_ns : int
(** Simulated software cost of computing one record checksum. *)

module Inode : sig
  (* Field byte offsets within a 128-byte inode record. *)
  val f_ino : int (* u64; non-zero = allocated *)
  val f_kind : int (* u64 *)
  val f_links : int (* u64 *)
  val f_size : int (* u64, bytes *)
  val f_atime : int (* u64 ns *)
  val f_mtime : int (* u64 ns *)
  val f_ctime : int (* u64 ns *)
  val f_mode : int (* u64 *)
  val f_uid : int (* u64 *)
  val f_gid : int (* u64 *)
  val f_crc : int (* u32 over [sealed_ranges] *)

  val sealed_ranges : (int * int) list
  (** [(off, len)] pairs, relative to the record base, covered by the
      CRC: ino, kind, mode, uid, gid and the zero padding. *)

  type t = {
    ino : int;
    kind : Kind.t;
    links : int;
    size : int;
    atime : int;
    mtime : int;
    ctime : int;
    mode : int;
    uid : int;
    gid : int;
  }

  val decode : Pmem.Device.t -> base:int -> t option
  (** [None] if the record is free (ino field zero) or malformed. *)

  val is_allocated : Pmem.Device.t -> base:int -> bool
  (** Any byte non-zero. *)

  val seal : Pmem.Device.t -> base:int -> unit
  (** Store the CRC of the sealed fields (plain store; the caller's init
      flush + fence makes it durable with the rest of the init group). *)

  val verify : Pmem.Device.t -> base:int -> bool
  (** Recompute and compare; [false] also on a persistent
      {!Pmem.Device.Media_error}. Only meaningful on csum volumes. *)
end

module Dentry : sig
  val f_name : int (* 110-byte NUL-padded name *)
  val f_ino : int (* u64; non-zero = valid *)
  val f_rename_ptr : int (* u64 byte offset of source dentry, 0 = none *)

  type t = { name : string; ino : int; rename_ptr : int }

  val decode : Pmem.Device.t -> base:int -> t option
  (** [None] if the record is entirely free (all bytes zero); otherwise
      the decoded entry, which may still be invalid ([ino = 0]). *)

  val is_allocated : Pmem.Device.t -> base:int -> bool
end

module Desc : sig
  (* Page descriptor: 64 bytes. Ordering rule: [kind] and [offset] are set
     while the descriptor is invisible; setting [ino] (the backpointer) is
     the 8-byte atomic commit that makes the page owned. *)
  val f_ino : int (* u64 backpointer; non-zero = owned *)
  val f_kind : int (* u64: 1 data, 2 dir *)
  val f_offset : int (* u64 page index within the file *)
  val f_replaces : int
  (* u64: 1 + page this one atomically replaces (COW data writes), 0 = none *)
  val f_crc : int (* u32 over [sealed_ranges] *)

  val sealed_ranges : (int * int) list
  (** kind and offset plus zero padding; the ino backpointer and
      [replaces] are mutable and excluded. *)

  type page_kind = Data | Dirpage

  type t = { ino : int; kind : page_kind; offset : int; replaces : int }

  val decode : Pmem.Device.t -> base:int -> t option
  (** [None] if free; entries with [ino = 0] but non-zero metadata decode
      to [Some { ino = 0; _ }] so the mount scan can treat them as
      allocated-but-invalid. *)

  val is_allocated : Pmem.Device.t -> base:int -> bool
  val kind_to_int : page_kind -> int
  val kind_of_int : int -> page_kind option

  val seal : Pmem.Device.t -> base:int -> unit
  val verify : Pmem.Device.t -> base:int -> bool
end

module Superblock : sig
  val magic : int

  val f_magic : int
  val f_version : int
  val f_device_size : int
  val f_inode_count : int
  val f_page_count : int
  val f_inode_table_off : int
  val f_page_desc_off : int
  val f_data_off : int
  val f_clean : int (* u64: 1 = cleanly unmounted *)
  val f_flags : int (* u64: bit 0 = metadata checksums enabled *)
  val f_crc : int (* u32 over [sealed_ranges] *)

  val sealed_ranges : (int * int) list

  type t = { geometry : Geometry.t; clean : bool; csum : bool }

  val write : ?csum:bool -> Pmem.Device.t -> Geometry.t -> clean:bool -> unit
  (** Persist a fresh superblock (mkfs path): non-temporal stores plus a
      fence. With [~csum:true] (default false) the checksum flag and the
      superblock's own CRC are also written; with the default the byte
      image and store sequence are identical to pre-checksum builds. *)

  val read : Pmem.Device.t -> t option
  (** [None] if the magic does not match. *)

  val verify : Pmem.Device.t -> bool
  (** Check the superblock CRC (meaningful only when [csum] is set). *)

  val set_clean : Pmem.Device.t -> bool -> unit
  (** Atomically update the clean-unmount flag and persist it. *)
end
