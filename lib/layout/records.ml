module Device = Pmem.Device

module Kind = struct
  type t = File | Dir | Symlink

  let to_int = function File -> 1 | Dir -> 2 | Symlink -> 3

  let of_int = function
    | 1 -> Some File
    | 2 -> Some Dir
    | 3 -> Some Symlink
    | _ -> None

  let pp ppf = function
    | File -> Format.pp_print_string ppf "file"
    | Dir -> Format.pp_print_string ppf "dir"
    | Symlink -> Format.pp_print_string ppf "symlink"
end

let any_nonzero dev base len =
  let b = Device.read dev ~off:base ~len in
  let rec go i = i < len && (Bytes.get b i <> '\000' || go (i + 1)) in
  go 0

(* {1 Record checksums}

   Only fields that are immutable once the record is initialized are
   covered ("sealed"): the SSU ordering rules guarantee the whole init
   group — including the CRC — is durable before the record is committed,
   so at {e every} legal crash point a committed record carries a valid
   checksum and a mismatch can only mean media corruption. Mutable fields
   (link counts, sizes, times, the commit backpointers themselves) change
   via independent 8-byte atomic stores and are excluded; they are covered
   by the device-level line ECC + scrubber instead. *)

let crc_ns = 40 (* simulated software cost of one record checksum *)

let crc_of_ranges dev ~base ranges =
  List.fold_left
    (fun crc (off, len) ->
      let b = Device.read_meta dev ~off:(base + off) ~len in
      Faults.Crc32.digest_bytes ~crc b ~off:0 ~len)
    0 ranges

module Inode = struct
  let f_ino = 0
  let f_kind = 8
  let f_links = 16
  let f_size = 24
  let f_atime = 32
  let f_mtime = 40
  let f_ctime = 48
  let f_mode = 56
  let f_uid = 64
  let f_gid = 72
  let f_crc = 120

  (* ino, kind, mode, uid, gid + the zero padding; links/size/times are
     mutable and excluded. *)
  let sealed_ranges = [ (0, 16); (56, 64); (124, 4) ]

  type t = {
    ino : int;
    kind : Kind.t;
    links : int;
    size : int;
    atime : int;
    mtime : int;
    ctime : int;
    mode : int;
    uid : int;
    gid : int;
  }

  let decode dev ~base =
    let ino = Device.read_u64 dev (base + f_ino) in
    if ino = 0 then None
    else
      match Kind.of_int (Device.read_u64 dev (base + f_kind)) with
      | None -> None
      | Some kind ->
          Some
            {
              ino;
              kind;
              links = Device.read_u64 dev (base + f_links);
              size = Device.read_u64 dev (base + f_size);
              atime = Device.read_u64 dev (base + f_atime);
              mtime = Device.read_u64 dev (base + f_mtime);
              ctime = Device.read_u64 dev (base + f_ctime);
              mode = Device.read_u64 dev (base + f_mode);
              uid = Device.read_u64 dev (base + f_uid);
              gid = Device.read_u64 dev (base + f_gid);
            }

  let is_allocated dev ~base = any_nonzero dev base Geometry.inode_size

  let seal dev ~base =
    let crc = crc_of_ranges dev ~base sealed_ranges in
    Device.store_u32 dev (base + f_crc) crc;
    Device.charge dev crc_ns

  let verify dev ~base =
    Device.charge dev crc_ns;
    match crc_of_ranges dev ~base sealed_ranges with
    | crc -> crc = Device.read_u32 dev (base + f_crc)
    | exception Device.Media_error _ -> false
end

module Dentry = struct
  let f_name = 0
  let f_ino = 112
  let f_rename_ptr = 120

  type t = { name : string; ino : int; rename_ptr : int }

  let decode dev ~base =
    if not (any_nonzero dev base Geometry.dentry_size) then None
    else
      let raw =
        Bytes.to_string (Device.read dev ~off:(base + f_name) ~len:Geometry.name_max)
      in
      let name =
        match String.index_opt raw '\000' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      Some
        {
          name;
          ino = Device.read_u64 dev (base + f_ino);
          rename_ptr = Device.read_u64 dev (base + f_rename_ptr);
        }

  let is_allocated dev ~base = any_nonzero dev base Geometry.dentry_size
end

module Desc = struct
  let f_ino = 0
  let f_kind = 8
  let f_offset = 16
  let f_replaces = 24
  let f_crc = 56

  (* kind, offset + zero padding; ino (the commit backpointer) and
     replaces (cleared on COW completion) are mutable and excluded. *)
  let sealed_ranges = [ (8, 16); (32, 24); (60, 4) ]

  type page_kind = Data | Dirpage

  type t = { ino : int; kind : page_kind; offset : int; replaces : int }

  let kind_to_int = function Data -> 1 | Dirpage -> 2
  let kind_of_int = function 1 -> Some Data | 2 -> Some Dirpage | _ -> None

  let decode dev ~base =
    if not (any_nonzero dev base Geometry.desc_size) then None
    else
      match kind_of_int (Device.read_u64 dev (base + f_kind)) with
      | None -> None
      | Some kind ->
          Some
            {
              ino = Device.read_u64 dev (base + f_ino);
              kind;
              offset = Device.read_u64 dev (base + f_offset);
              replaces = Device.read_u64 dev (base + f_replaces);
            }

  let is_allocated dev ~base = any_nonzero dev base Geometry.desc_size

  let seal dev ~base =
    let crc = crc_of_ranges dev ~base sealed_ranges in
    Device.store_u32 dev (base + f_crc) crc;
    Device.charge dev crc_ns

  let verify dev ~base =
    Device.charge dev crc_ns;
    match crc_of_ranges dev ~base sealed_ranges with
    | crc -> crc = Device.read_u32 dev (base + f_crc)
    | exception Device.Media_error _ -> false
end

module Superblock = struct
  let magic = 0x53_51_52_4C_46_53 (* "SQRLFS" *)

  let f_magic = 0
  let f_version = 8
  let f_device_size = 16
  let f_inode_count = 24
  let f_page_count = 32
  let f_inode_table_off = 40
  let f_page_desc_off = 48
  let f_data_off = 56
  let f_clean = 64
  let f_flags = 72 (* bit 0: metadata checksums enabled *)
  let f_crc = 80

  (* everything immutable after mkfs; the clean flag is excluded. *)
  let sealed_ranges = [ (0, 64); (72, 8) ]

  type t = { geometry : Geometry.t; clean : bool; csum : bool }

  let write ?(csum = false) dev (g : Geometry.t) ~clean =
    let put f v =
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int v);
      Device.store_nt dev ~off:f (Bytes.to_string b)
    in
    put f_magic magic;
    put f_version 1;
    put f_device_size g.device_size;
    put f_inode_count g.inode_count;
    put f_page_count g.page_count;
    put f_inode_table_off g.inode_table_off;
    put f_page_desc_off g.page_desc_off;
    put f_data_off g.data_off;
    put f_clean (if clean then 1 else 0);
    if csum then begin
      put f_flags 1;
      put f_crc (crc_of_ranges dev ~base:0 sealed_ranges);
      Device.charge dev crc_ns
    end;
    Device.fence dev

  let verify dev =
    Device.charge dev crc_ns;
    match crc_of_ranges dev ~base:0 sealed_ranges with
    | crc -> crc = Device.read_u32 dev f_crc
    | exception Device.Media_error _ -> false

  let read dev =
    if Device.read_u64 dev f_magic <> magic then None
    else
      let geometry =
        {
          Geometry.device_size = Device.read_u64 dev f_device_size;
          inode_count = Device.read_u64 dev f_inode_count;
          page_count = Device.read_u64 dev f_page_count;
          inode_table_off = Device.read_u64 dev f_inode_table_off;
          page_desc_off = Device.read_u64 dev f_page_desc_off;
          data_off = Device.read_u64 dev f_data_off;
        }
      in
      Some
        {
          geometry;
          clean = Device.read_u64 dev f_clean = 1;
          csum = Device.read_u64 dev f_flags land 1 = 1;
        }

  let set_clean dev clean =
    Device.store_u64 dev f_clean (if clean then 1 else 0);
    Device.persist dev ~off:f_clean ~len:8
end
