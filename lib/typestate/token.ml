exception Stale_handle of string

type registry = {
  gens : (int, int) Hashtbl.t;
  flush_epochs : (int, int) Hashtbl.t;
  mutable epoch : int;
  mutable obs : Obs.Metrics.t option;
  lock : Mutex.t; (* guards the tables and the epoch; wrappers below *)
}

type t = { oid : int; gen : int }

let create_registry () =
  {
    gens = Hashtbl.create 64;
    flush_epochs = Hashtbl.create 64;
    epoch = 1;
    obs = None;
    lock = Mutex.create ();
  }

let set_metrics reg m = reg.obs <- m

let tick reg name =
  match reg.obs with None -> () | Some m -> Obs.Metrics.incr m name 1

let current reg oid =
  match Hashtbl.find_opt reg.gens oid with Some g -> g | None -> 0

let mint reg ~id =
  tick reg "token.mints";
  let g = current reg id + 1 in
  Hashtbl.replace reg.gens id g;
  { oid = id; gen = g }

let validate reg t =
  if current reg t.oid <> t.gen then
    raise
      (Stale_handle
         (Printf.sprintf
            "object %d: handle generation %d is stale (current %d)" t.oid
            t.gen (current reg t.oid)))

let use reg t =
  tick reg "token.uses";
  validate reg t;
  mint reg ~id:t.oid

let check reg t = validate reg t

let release reg t =
  tick reg "token.releases";
  validate reg t;
  ignore (mint reg ~id:t.oid)

let id t = t.oid

let epoch reg = reg.epoch

let bump_epoch reg =
  tick reg "token.fence_epochs";
  reg.epoch <- reg.epoch + 1

let flushed_at reg t =
  let t' = use reg t in
  Hashtbl.replace reg.flush_epochs t.oid reg.epoch;
  t'

let assert_fenced reg t =
  validate reg t;
  (match Hashtbl.find_opt reg.flush_epochs t.oid with
  | None ->
      raise
        (Stale_handle
           (Printf.sprintf "object %d: fenced without a recorded flush" t.oid))
  | Some fe ->
      if fe >= reg.epoch then
        raise
          (Stale_handle
             (Printf.sprintf
                "object %d: no fence since flush (flush epoch %d, current %d)"
                t.oid fe reg.epoch)));
  use reg t

(* {1 Concurrency}

   One registry serves every domain executing ops under the [Serve]
   engine. Object ids are disjoint across concurrently running ops (the
   shard locks see to that), but the generation and flush-epoch tables
   themselves are shared [Hashtbl]s, and [bump_epoch] races with every
   in-flight transition. Each public entry point below takes one short
   critical section on the registry's own lock, shadowing the lock-free
   bodies above (which keep calling each other directly — [use] ->
   [validate] + [mint] stays on the unlocked bodies, so a plain [Mutex]
   is enough). Independent registries (parallel fuzzer shards) never
   contend. *)

let locked reg f =
  Mutex.lock reg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.lock) f

let mint reg ~id = locked reg (fun () -> mint reg ~id)
let use reg t = locked reg (fun () -> use reg t)
let check reg t = locked reg (fun () -> check reg t)
let release reg t = locked reg (fun () -> release reg t)
let epoch reg = locked reg (fun () -> epoch reg)
let bump_epoch reg = locked reg (fun () -> bump_epoch reg)
let flushed_at reg t = locked reg (fun () -> flushed_at reg t)
let assert_fenced reg t = locked reg (fun () -> assert_fenced reg t)
