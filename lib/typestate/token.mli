(** Runtime linearity tokens.

    Rust's ownership system guarantees each persistent object has exactly
    one live handle, which is what makes typestate sound there. OCaml's
    phantom types enforce the *ordering* of transitions statically but
    cannot prevent an old handle from being used twice. These generation
    tokens close that hole dynamically: every handle carries the
    generation under which it was minted, every typestate transition
    consumes the token ([use]) and bumps the generation, and using a stale
    handle raises {!Stale_handle}. This is the documented substitution for
    linearity (see DESIGN.md). *)

exception Stale_handle of string

type registry
(** Per-filesystem table mapping object ids to their current generation,
    plus the fence-epoch counter used by shared-fence witnesses. *)

type t
(** A token: object id + generation. Immutable; transitions mint fresh
    tokens. *)

val create_registry : unit -> registry

val set_metrics : registry -> Obs.Metrics.t option -> unit
(** Attach a metrics registry counting token traffic (mints, uses,
    releases, fence epochs). [None] (the default) makes every transition
    cost a single extra branch. *)

val mint : registry -> id:int -> t
(** Start a handle chain for object [id]: invalidates any outstanding
    token for [id] and returns a fresh one. *)

val use : registry -> t -> t
(** Consume a token: verifies it is current, then bumps the generation and
    returns the successor token. Raises {!Stale_handle} if the token was
    already consumed (double use of a handle). *)

val check : registry -> t -> unit
(** Verify the token is current without consuming it (read-only access).
    Raises {!Stale_handle} otherwise. *)

val release : registry -> t -> unit
(** End a handle chain: consumes the token with no successor. *)

val id : t -> int

(** {1 Fence epochs}

    Shared-fence support: flushing a handle records the current epoch;
    the filesystem bumps the epoch at every [sfence]; a handle may move
    [in_flight -> clean] only if its flush epoch predates the current
    epoch, i.e. a fence really happened after its flush. *)

val epoch : registry -> int
val bump_epoch : registry -> unit

val flushed_at : registry -> t -> t
(** Consume [t], recording the current epoch as its flush epoch. *)

val assert_fenced : registry -> t -> t
(** Consume [t], verifying a fence occurred since its flush epoch. Raises
    {!Stale_handle} with an explanatory message if not. *)
