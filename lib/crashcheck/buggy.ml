(** Deliberately mis-ordered operation variants (§4.2 bug reinjection).

    Each function performs a real file-system operation with raw device
    stores in an order the typestate API of {!Squirrelfs.Objects} makes
    unwritable — the OCaml equivalents simply do not type-check (see
    [examples/typestate_tour.ml] for the rejected forms). Running them
    under the crash harness demonstrates that the invariants they violate
    are exactly the ones the harness (and the paper's compiler) detects.

    Volatile indexes are updated at the end of each function so the
    post-operation state matches the correct implementation's — only the
    intermediate crash states differ. *)

module Device = Pmem.Device
module Geometry = Layout.Geometry
module R = Layout.Records
module Fsctx = Squirrelfs.Fsctx
module Index = Squirrelfs.Index
module Alloc = Squirrelfs.Alloc

let persist dev ~off ~len = Device.persist dev ~off ~len

(* create with the dentry commit BEFORE the inode is durably initialized:
   a crash in between leaves a directory entry pointing at a garbage
   inode (paper Listing 1's bug). *)
let create (ctx : Fsctx.t) ~dir ~name =
  let dev = ctx.dev and geo = ctx.geo in
  let ino =
    match Alloc.alloc_inode ctx.alloc with
    | Some i -> i
    | None -> failwith "Buggy.create: no free inodes"
  in
  let loc =
    match Index.free_slot ctx.index ~dir with
    | Some l -> l
    | None -> failwith "Buggy.create: no free dentry slot"
  in
  Index.mark_slot_used ctx.index loc;
  let dbase = Geometry.dentry_off geo ~page:loc.Index.page ~slot:loc.Index.slot in
  (* name + COMMIT first... *)
  Device.store dev ~off:(dbase + R.Dentry.f_name)
    (name ^ String.make (Geometry.name_max - String.length name) '\000');
  Device.store_u64 dev (dbase + R.Dentry.f_ino) ino;
  persist dev ~off:dbase ~len:Geometry.dentry_size;
  (* ...inode initialization second: the mis-ordering *)
  let ibase = Geometry.inode_off geo ~ino in
  Device.store_u64 dev (ibase + R.Inode.f_ino) ino;
  Device.store_u64 dev (ibase + R.Inode.f_kind) (R.Kind.to_int R.Kind.File);
  Device.store_u64 dev (ibase + R.Inode.f_links) 1;
  Device.store_u64 dev (ibase + R.Inode.f_mode) 0o644;
  persist dev ~off:ibase ~len:Geometry.inode_size;
  Index.insert_dentry ctx.index ~dir name ~ino loc;
  Index.add_file ctx.index ino

(* unlink with the link decrement BEFORE the dentry clear: a crash in
   between leaves a live dentry pointing at an inode whose link count is
   lower than its true number of links (the paper's initial rename bug,
   §4.2 "Incorrect ordering"). *)
let unlink (ctx : Fsctx.t) ~dir ~name =
  let dev = ctx.dev and geo = ctx.geo in
  let ino, loc =
    match Index.lookup ctx.index ~dir name with
    | Some x -> x
    | None -> failwith "Buggy.unlink: no such entry"
  in
  let ibase = Geometry.inode_off geo ~ino in
  let links = Device.read_u64 dev (ibase + R.Inode.f_links) in
  (* decrement first... *)
  Device.store_u64 dev (ibase + R.Inode.f_links) (links - 1);
  persist dev ~off:(ibase + R.Inode.f_links) ~len:8;
  (* ...dentry clear second *)
  let dbase = Geometry.dentry_off geo ~page:loc.Index.page ~slot:loc.Index.slot in
  Device.store_u64 dev (dbase + R.Dentry.f_ino) 0;
  persist dev ~off:(dbase + R.Dentry.f_ino) ~len:8;
  Device.zero dev ~off:dbase ~len:Geometry.dentry_size;
  Device.fence dev;
  Index.remove_dentry ctx.index ~dir name;
  Index.mark_slot_free ctx.index loc;
  if links - 1 = 0 then begin
    (* reclaim pages and the inode (correct order; the bug is above) *)
    List.iter
      (fun (off, page) ->
        let dsc = Geometry.desc_off geo ~page in
        Device.store_u64 dev (dsc + R.Desc.f_ino) 0;
        persist dev ~off:dsc ~len:8;
        Device.zero dev ~off:dsc ~len:Geometry.desc_size;
        Device.fence dev;
        Index.remove_file_page ctx.index ~ino ~offset:off;
        Alloc.free_page ctx.alloc page)
      (Index.file_pages ctx.index ~ino);
    Device.zero dev ~off:ibase ~len:Geometry.inode_size;
    Device.fence dev;
    Index.remove_file ctx.index ino;
    Alloc.free_inode ctx.alloc ino
  end

(* append with the size update BEFORE the new page's backpointer is
   durable: a crash in between gives the file a size larger than its
   pages (the missing flush/fence bug of §4.2 "Missing persistence
   primitives"). *)
let write_append (ctx : Fsctx.t) ~ino data =
  let dev = ctx.dev and geo = ctx.geo in
  if String.length data > Geometry.page_size then
    invalid_arg "Buggy.write_append: at most one page";
  let ibase = Geometry.inode_off geo ~ino in
  let size = Device.read_u64 dev (ibase + R.Inode.f_size) in
  let offset = (size + Geometry.page_size - 1) / Geometry.page_size in
  let page =
    match Alloc.alloc_page ctx.alloc with
    | Some p -> p
    | None -> failwith "Buggy.write_append: no free pages"
  in
  (* size first... *)
  let new_size = (offset * Geometry.page_size) + String.length data in
  Device.store_u64 dev (ibase + R.Inode.f_size) new_size;
  persist dev ~off:(ibase + R.Inode.f_size) ~len:8;
  (* ...page contents and ownership second *)
  Device.store_coarse dev ~off:(Geometry.page_off geo ~page) data;
  let dsc = Geometry.desc_off geo ~page in
  Device.store_u64 dev (dsc + R.Desc.f_kind) (R.Desc.kind_to_int R.Desc.Data);
  Device.store_u64 dev (dsc + R.Desc.f_offset) offset;
  Device.store_u64 dev (dsc + R.Desc.f_ino) ino;
  persist dev ~off:dsc ~len:Geometry.desc_size;
  Index.add_file_page ctx.index ~ino ~offset page

(* snapshot creation with the table entry published in the same flush
   group as its record: nothing orders the slot's id/hash/CRC before the
   commit word, so a crash can drain the commit word first and leave a
   {e committed} entry whose record (including the quiesced base hash)
   is garbage — a torn snapshot. The correct [Snap.snapshot] fences the
   init group before flipping the state word. *)
let snap_create (ctx : Fsctx.t) ~name =
  let dev = ctx.dev in
  let module S = Layout.Snaptab in
  let slot =
    match S.free_slot dev with
    | Some s -> s
    | None -> failwith "Buggy.snap_create: snapshot table full"
  in
  Fsctx.fence ctx (* quiesce, as the correct path does *);
  let label = Device.durable_hash dev in
  let id = S.next_id dev in
  let epoch = Typestate.Token.epoch ctx.reg in
  (* init group and commit word in one unfenced burst: the mis-ordering *)
  S.Slot.write_init dev ~slot ~id ~epoch ~hash:label ~name;
  S.Slot.commit dev ~slot;
  Device.fence dev;
  (* volatile fixup: pin the durable image exactly as the correct path
     would, so post-operation state matches and only the intermediate
     crash states differ *)
  let r = Device.retain dev in
  Hashtbl.replace ctx.snaps name
    { Fsctx.sp_slot = slot; sp_id = id; sp_view = r; sp_quarantined = false }
