(** Crash-consistency harness (the role of Chipmunk, §5.7).

    For each workload the harness:

    + runs the workload on a pristine {e oracle} volume, capturing the
      logical state after every operation — since all SquirrelFS metadata
      operations are synchronous and crash-atomic, a crash during
      operation [k] must recover to exactly the state after [k-1] or
      after [k] operations;
    + replays the workload on a fresh volume with a fence hook installed:
      at every store fence it enumerates the legal crash images under the
      x86 persistence model, remounts each image (running recovery),
      checks it with the independent {!Squirrelfs.Fsck} checker, and
      compares its logical state against the oracle pair;
    + probes the final durable state the same way.

    Data contents are excluded from the comparison (data-plane writes are
    not atomic in SquirrelFS or in any of the baselines, matching the
    paper); sizes and all metadata are compared.

    {2 Fault injection}

    With a non-trivial [?faults] plan the real volume is formatted with
    checksummed metadata ([mkfs ~csum:true]) and the plan is installed on
    its device. Three extra obligations are then checked:

    - {e pure crash images} (no media damage) must never trip the media
      pre-pass: SSU seals every record before committing it, so a
      quarantine on a plain crash image means some code path published an
      unsealed record (this catches the [Buggy_*] variants on csum
      volumes);
    - {e media crash images} (torn / stuck cache lines sampled per the
      plan's rates) are not legal SSU states, so the contract is graceful
      handling only: mount and fsck must not raise;
    - after the workload, {e Phase B} flips one seeded bit in the sealed
      region of up to [bit_flips] committed inode records and requires
      the full pipeline: the scrubber flags every damaged line, a remount
      comes up degraded with the damaged inodes quarantined, their paths
      return a clean [EIO], and the rest of the tree stays readable. *)

type violation = {
  v_op_index : int;
  v_op : Workload.op option;
  v_detail : string;
}

type report = {
  workloads : int;
  ops_run : int;
  fences_probed : int;
  crash_states : int;
  states_deduped : int;
      (** crash/media states whose content-determined verdict (recovery +
          fsck + capture) came from the memo instead of a remount; always
          0 under the [Copy] engine. Deduped states still count in
          [crash_states]/[media_states] and still get the per-occurrence
          oracle comparison. *)
  media_states : int;  (** faulty (torn/stuck) crash images checked *)
  faults_injected : int;  (** bit flips + torn + stuck + read faults *)
  faults_detected : int;  (** injected flips caught by checksum quarantine *)
  faults_quarantined : int;  (** objects quarantined across remounts *)
  eio_checks : int;  (** quarantined paths that correctly returned [EIO] *)
  violations : violation list;
}

type engine = Copy | Delta
(** Crash-state exploration engine. [Copy] is the legacy path: each crash
    state is materialized into a fresh byte image and remounted through
    [Device.of_image] (three full-device copies per state), with no
    memoization. [Delta] (the default) patches {!Pmem.Device.crash_views}
    delta views into one reusable scratch buffer, mounts it zero-copy
    through [Device.of_view], and memoizes the content-determined verdict
    of each state by 64-bit content hash, so duplicate states across the
    fence sequence are checked once. Both engines enumerate identical
    state sets (same views, same RNG consumption) and report identical
    violations; only the work done per state differs. *)

type memo
(** Cross-workload cache of content-determined crash-state verdicts,
    keyed by full-content view hash ([Delta] engine only). Sound to
    share across any runs that use the same [device_size] (the hash is
    canonical across same-size devices); sharing never changes a report —
    [states_deduped] stays per-workload — it only skips recomputation of
    states that recur between workloads. Single-domain state: never
    share a memo across domains. *)

val memo_create : unit -> memo

val run_workload :
  ?device_size:int ->
  ?max_images_per_fence:int ->
  ?media_images_per_fence:int ->
  ?compare_data:bool ->
  ?faults:Faults.Plan.t ->
  ?engine:engine ->
  ?memo:memo ->
  Workload.op list ->
  report
(** Defaults: 512 KiB device, 12 images per fence, 4 media images per
    fence, [faults = Faults.none] (in which case the run is bit-identical
    to the pre-fault-subsystem harness), [engine = Delta], no shared
    [?memo] (verdicts cached within the workload only). [compare_data]
    (default false) additionally compares file contents against the
    oracle — only meaningful for workloads whose data writes are all
    [Write_atomic], since regular data writes are not crash-atomic (in
    SquirrelFS or any of the baselines, matching the paper). *)

val run_suite :
  ?device_size:int ->
  ?max_images_per_fence:int ->
  ?media_images_per_fence:int ->
  ?compare_data:bool ->
  ?faults:Faults.Plan.t ->
  ?engine:engine ->
  ?progress:(int -> int -> unit) ->
  Workload.op list list ->
  report
(** Folds {!run_workload} over the suite with {!merge}, sharing one
    {!memo} across all workloads (they run at one device size, so
    verdicts for recurring states carry over). *)

val empty : report
val merge : report -> report -> report
val pp_report : Format.formatter -> report -> unit
