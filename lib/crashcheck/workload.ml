type op =
  | Create of string
  | Mkdir of string
  | Unlink of string
  | Rmdir of string
  | Rename of string * string
  | Link of string * string
  | Symlink of string * string
  | Write of string * int * string
  | Write_atomic of string * int * string
  | Truncate of string * int
  | Fsync of string
  | Fdatasync of string
  | Tmpfile of string
  | Linkat of string * string
  | Open of string * string (* tag, path *)
  | Close of string
  | Write_h of string * int * string (* tag, off, data *)
  | Read_h of string * int * int (* tag, off, len *)
  | Buggy_create of string
  | Buggy_unlink of string
  | Buggy_write of string * string
  | Snapshot of string
  | Rollback of string
  | Buggy_snap of string

let pp_op ppf = function
  | Create p -> Format.fprintf ppf "create(%s)" p
  | Mkdir p -> Format.fprintf ppf "mkdir(%s)" p
  | Unlink p -> Format.fprintf ppf "unlink(%s)" p
  | Rmdir p -> Format.fprintf ppf "rmdir(%s)" p
  | Rename (a, b) -> Format.fprintf ppf "rename(%s,%s)" a b
  | Link (a, b) -> Format.fprintf ppf "link(%s,%s)" a b
  | Symlink (a, b) -> Format.fprintf ppf "symlink(%s,%s)" a b
  | Write (p, off, data) ->
      Format.fprintf ppf "write(%s,%d,%dB)" p off (String.length data)
  | Write_atomic (p, off, data) ->
      Format.fprintf ppf "write-atomic(%s,%d,%dB)" p off (String.length data)
  | Truncate (p, n) -> Format.fprintf ppf "truncate(%s,%d)" p n
  | Fsync p -> Format.fprintf ppf "fsync(%s)" p
  | Fdatasync p -> Format.fprintf ppf "fdatasync(%s)" p
  | Tmpfile tag -> Format.fprintf ppf "tmpfile(%s)" tag
  | Linkat (tag, p) -> Format.fprintf ppf "linkat(%s,%s)" tag p
  | Open (tag, p) -> Format.fprintf ppf "open(%s,%s)" tag p
  | Close tag -> Format.fprintf ppf "close(%s)" tag
  | Write_h (tag, off, data) ->
      Format.fprintf ppf "write-h(%s,%d,%dB)" tag off (String.length data)
  | Read_h (tag, off, len) -> Format.fprintf ppf "read-h(%s,%d,%d)" tag off len
  | Buggy_create p -> Format.fprintf ppf "BUGGY-create(%s)" p
  | Buggy_unlink p -> Format.fprintf ppf "BUGGY-unlink(%s)" p
  | Buggy_write (p, d) ->
      Format.fprintf ppf "BUGGY-write(%s,%dB)" p (String.length d)
  | Snapshot n -> Format.fprintf ppf "snapshot(%s)" n
  | Rollback n -> Format.fprintf ppf "rollback(%s)" n
  | Buggy_snap n -> Format.fprintf ppf "BUGGY-snap(%s)" n

let pp ppf ops =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       pp_op)
    ops

let apply (type a) (module F : Vfs.Fs.S with type t = a) (fs : a) op =
  let ign (r : _ Vfs.Fs.r) = ignore (Result.is_ok r : bool) in
  match op with
  | Create p | Buggy_create p -> ign (F.create fs p)
  | Mkdir p -> ign (F.mkdir fs p)
  | Unlink p | Buggy_unlink p -> ign (F.unlink fs p)
  | Rmdir p -> ign (F.rmdir fs p)
  | Rename (a, b) -> ign (F.rename fs a b)
  | Link (a, b) -> ign (F.link fs a b)
  | Symlink (a, b) -> ign (F.symlink fs a b)
  | Write (p, off, data) | Write_atomic (p, off, data) ->
      ign (F.write fs p ~off data)
  | Buggy_write (p, data) -> (
      (* oracle semantics: a correct page-aligned append *)
      match F.stat fs p with
      | Ok st ->
          let page = Layout.Geometry.page_size in
          let off = (st.Vfs.Fs.size + page - 1) / page * page in
          ign (F.write fs p ~off data)
      | Error _ -> ())
  | Truncate (p, n) -> ign (F.truncate fs p n)
  | Fsync p -> ign (F.fsync fs p)
  | Fdatasync p -> ign (F.fdatasync fs p)
  | Tmpfile tag -> ign (F.tmpfile fs tag)
  | Linkat (tag, p) -> ign (F.linkat fs tag p)
  | Open (tag, p) -> ign (F.open_file fs tag p)
  | Close tag -> ign (F.close_file fs tag)
  | Write_h (tag, off, data) -> ign (F.write_h fs tag ~off data)
  | Read_h (tag, off, len) -> ign (F.read_h fs tag ~off ~len)
  | Snapshot _ | Rollback _ | Buggy_snap _ ->
      (* Snapshots live below the VFS surface; appliers that understand
         them (Exec, Harness, Ref_fs) dispatch before reaching here. *)
      ()

let setup =
  [ Mkdir "/D"; Create "/A"; Write ("/A", 0, String.make 2000 'a') ]

(* Canonical B3-style enumeration universe: 2 directories (/D live, /E
   fresh), 2 files (/A live with 2000 bytes, /B fresh), one symlink
   target (/S), one anonymous-file tag ("t0"), all over the fixed
   [setup] prefix. This is the single source of truth for systematic
   workload generation: [systematic_pairs] below and [Fuzzer.Enum]'s
   bounded seq-2/seq-3 sweeps both draw from this alphabet. The first
   14 entries are the pre-enumeration alphabet, pinned by a subset test
   in [test_enum]; the tail widens the op surface with the distinct
   persistence points (fsync/fdatasync), the anonymous-file lifecycle
   (tmpfile/linkat) and a truncate on the fresh file. *)
let alphabet =
  [
    Create "/B";
    Mkdir "/E";
    Unlink "/A";
    Rmdir "/D";
    Rename ("/A", "/B");
    Rename ("/A", "/D/A2");
    Rename ("/D", "/E2");
    Link ("/A", "/B2");
    Symlink ("/A", "/S");
    Write ("/A", 0, String.make 100 'w');
    Write ("/A", 4090, String.make 100 'x');
    Write ("/B", 0, String.make 50 'y');
    Truncate ("/A", 10);
    Truncate ("/A", 9000);
    (* op-surface push *)
    Fsync "/A";
    Fdatasync "/A";
    Tmpfile "t0";
    Linkat ("t0", "/B");
    Truncate ("/B", 0);
    (* split data path: open-handle lifecycle over the live file. The
       in-place write stays under the handle's snapshot; the appends
       exercise the staged relink commit (one lands past the current
       size, extending /A by fresh pages). *)
    Open ("h0", "/A");
    Write_h ("h0", 0, String.make 100 'H');
    Write_h ("h0", 8100, String.make 200 'I');
    Close "h0";
    (* snapshot surface: a named snapshot plus the rollback to it. The
       rollback entry hits ENOENT when no snapshot precedes it in a
       pair, and the full three-phase redo-log flip when one does. *)
    Snapshot "s0";
    Rollback "s0";
  ]

let systematic_pairs () =
  List.concat_map
    (fun a -> List.map (fun b -> setup @ [ a; b ]) alphabet)
    alphabet

let random ~seed ~ops_per_workload ~count =
  let rng = Random.State.make [| seed |] in
  let dirs = [ "/D"; "/E"; "/D/X" ] in
  let files = [ "/A"; "/B"; "/D/F"; "/D/X/G"; "/E/H" ] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let gen_op () =
    match Random.State.int rng 11 with
    | 0 -> Create (pick files)
    | 1 -> Mkdir (pick dirs)
    | 2 -> Unlink (pick files)
    | 3 -> Rmdir (pick dirs)
    | 4 -> Rename (pick files, pick files)
    | 5 -> Rename (pick dirs, pick dirs)
    | 6 -> Link (pick files, pick files)
    | 7 ->
        Write
          ( pick files,
            Random.State.int rng 5000,
            String.make (1 + Random.State.int rng 5000) 'r' )
    | 8 -> Truncate (pick files, Random.State.int rng 10000)
    | 9 -> Symlink (pick files, pick files)
    | _ -> Rename (pick files, pick dirs ^ "/moved")
  in
  List.init count (fun _ ->
      List.init ops_per_workload (fun _ -> gen_op ()))
