(** Syscall workloads for crash-consistency testing (the role of
    Chipmunk/ACE's systematically generated tests, §5.7). *)

type op =
  | Create of string
  | Mkdir of string
  | Unlink of string
  | Rmdir of string
  | Rename of string * string
  | Link of string * string
  | Symlink of string * string  (** target, linkpath *)
  | Write of string * int * string  (** path, offset, data *)
  | Write_atomic of string * int * string
      (** COW data write (the §3.4 extension): crash-atomic per page *)
  | Truncate of string * int
  | Fsync of string
  | Fdatasync of string
      (** distinct persistence points: no-ops on a synchronous PM file
          system, but enumerated as separate sequence elements so an
          implementation whose sync path skipped a fence would diverge *)
  | Tmpfile of string  (** tag: O_TMPFILE-style anonymous file *)
  | Linkat of string * string  (** tag, path: materialize the tmpfile *)
  | Open of string * string
      (** tag, path: bind an open handle (SplitFS-style split data path) *)
  | Close of string
  | Write_h of string * int * string  (** tag, offset, data — via handle *)
  | Read_h of string * int * int  (** tag, offset, len — via handle *)
  | Buggy_create of string
      (** deliberately mis-ordered variants, §4.2 bug reinjection *)
  | Buggy_unlink of string
  | Buggy_write of string * string
  | Snapshot of string  (** named crash-consistent snapshot ([Snap]) *)
  | Rollback of string  (** whole-volume flip back to a snapshot *)
  | Buggy_snap of string
      (** mis-ordered snapshot creation: table entry published before the
          record (and the quiesced base hash) is fenced *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> op list -> unit

val apply : (module Vfs.Fs.S with type t = 'a) -> 'a -> op -> unit
(** Execute one op, ignoring legitimate errors (generated sequences may
    contain ops that fail, e.g. unlinking a renamed-away file); the buggy
    variants are executed with their {e correct} semantics here (this is
    the oracle path). *)

val setup : op list
(** Common prefix establishing a small namespace. *)

val alphabet : op list
(** The canonical B3-style enumeration universe over the [setup]
    namespace: 2 dirs × 2 files × 1 symlink target × 1 anonymous-file
    tag. Single source of truth for [systematic_pairs] and
    [Fuzzer.Enum]'s bounded sweeps. *)

val systematic_pairs : unit -> op list list
(** Every ordered pair from [alphabet], each prefixed with [setup]:
    |alphabet|² workloads — i.e. [Fuzzer.Enum]'s seq-2 tier, expressed
    as concrete workloads. *)

val random : seed:int -> ops_per_workload:int -> count:int -> op list list
(** Seeded random workloads over a wider namespace (the fuzzing
    component). *)
