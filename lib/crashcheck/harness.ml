module Device = Pmem.Device
module Sq = Squirrelfs
module Logical = Vfs.Logical

type violation = {
  v_op_index : int;
  v_op : Workload.op option;
  v_detail : string;
}

type report = {
  workloads : int;
  ops_run : int;
  fences_probed : int;
  crash_states : int;
  states_deduped : int;
  media_states : int;
  faults_injected : int;
  faults_detected : int;
  faults_quarantined : int;
  eio_checks : int;
  violations : violation list;
}

let empty =
  {
    workloads = 0;
    ops_run = 0;
    fences_probed = 0;
    crash_states = 0;
    states_deduped = 0;
    media_states = 0;
    faults_injected = 0;
    faults_detected = 0;
    faults_quarantined = 0;
    eio_checks = 0;
    violations = [];
  }

let merge a b =
  {
    workloads = a.workloads + b.workloads;
    ops_run = a.ops_run + b.ops_run;
    fences_probed = a.fences_probed + b.fences_probed;
    crash_states = a.crash_states + b.crash_states;
    states_deduped = a.states_deduped + b.states_deduped;
    media_states = a.media_states + b.media_states;
    faults_injected = a.faults_injected + b.faults_injected;
    faults_detected = a.faults_detected + b.faults_detected;
    faults_quarantined = a.faults_quarantined + b.faults_quarantined;
    eio_checks = a.eio_checks + b.eio_checks;
    violations = a.violations @ b.violations;
  }

(* Crash-state exploration engine. [Copy] is the legacy path: every view
   is materialized into a fresh image and remounted through [of_image]
   (two more copies), nothing memoized. [Delta] patches views into one
   reusable scratch buffer, mounts it zero-copy through [of_view], and
   memoizes the content-determined part of each state's verdict by
   64-bit content hash. Both engines probe the identical view sets, so
   they find the identical violations. *)
type engine = Copy | Delta

(* Real-run dispatch: buggy variants go through the raw mis-ordered
   implementations; everything else through the normal FS. *)
let apply_real (ctx : Sq.Fsctx.t) (op : Workload.op) =
  let root_name p = String.sub p 1 (String.length p - 1) in
  match op with
  | Workload.Buggy_create p ->
      Buggy.create ctx ~dir:Layout.Geometry.root_ino ~name:(root_name p)
  | Workload.Buggy_unlink p ->
      Buggy.unlink ctx ~dir:Layout.Geometry.root_ino ~name:(root_name p)
  | Workload.Write_atomic (p, off, data) -> (
      match Sq.stat ctx p with
      | Ok st ->
          ignore
            (Result.is_ok
               (Sq.Ops.write_atomic ctx ~ino:st.Vfs.Fs.ino ~off data)
              : bool)
      | Error _ -> ())
  | Workload.Buggy_write (p, data) -> (
      match Sq.stat ctx p with
      | Ok st -> Buggy.write_append ctx ~ino:st.Vfs.Fs.ino data
      | Error e ->
          failwith
            (Printf.sprintf "Buggy_write: stat %s: %s" p
               (Vfs.Errno.to_string e)))
  | Workload.Snapshot n ->
      ignore (Result.is_ok (Snap.snapshot ctx n) : bool)
  | Workload.Rollback n -> ignore (Result.is_ok (Snap.rollback ctx n) : bool)
  | Workload.Buggy_snap n -> Buggy.snap_create ctx ~name:n
  | op -> Workload.apply (module Squirrelfs) ctx op

(* Enumerate every path in the live file system (depth-first), one entry
   per inode (hardlinks keep the first path seen). Used to pick Phase-B
   corruption targets among committed, referenced metadata records. *)
let live_objects fs =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let rec walk path =
    match Sq.readdir fs path with
    | Error _ -> ()
    | Ok names ->
        List.iter
          (fun name ->
            let p = if path = "/" then "/" ^ name else path ^ "/" ^ name in
            match Sq.stat fs p with
            | Error _ -> ()
            | Ok st ->
                if not (Hashtbl.mem seen st.Vfs.Fs.ino) then begin
                  Hashtbl.add seen st.Vfs.Fs.ino ();
                  out := (p, st.Vfs.Fs.ino) :: !out
                end;
                if st.Vfs.Fs.kind = Vfs.Fs.Dir then walk p)
          names
  in
  walk "/";
  List.rev !out

(* Cross-workload verdict memos. The content-determined part of a crash
   state's verdict depends only on the image bytes, and the full-content
   view hash is canonical across devices of the same size — so carrying
   the tables across the workloads of a suite (all run at one
   [device_size]) is sound and skips re-checking states that recur from
   workload to workload (empty-tree and single-file states recur
   constantly). The [states_deduped] counter stays per-workload (see
   [check_image]), so reports are independent of memo lifetime. *)
type memo = {
  m_states : (int64, string list * Logical.t option) Hashtbl.t;
  m_media : (int64, string list) Hashtbl.t;
}

let memo_create () =
  { m_states = Hashtbl.create 1024; m_media = Hashtbl.create 256 }

(* Deterministically pick [k] distinct elements (partial Fisher-Yates). *)
let pick_k rng k xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)

let run_workload ?(device_size = 512 * 1024) ?(max_images_per_fence = 12)
    ?(media_images_per_fence = 4) ?(compare_data = false)
    ?(faults = Faults.none) ?(engine = Delta) ?memo ops =
  let faulty = not (Faults.is_none faults) in
  (* Media faults only make sense on a volume that can detect them:
     fault runs format with checksummed metadata records. *)
  let csum = faulty in
  let media =
    faulty
    && (faults.Faults.Plan.torn_line_rate > 0.
       || faults.Faults.Plan.stuck_line_rate > 0.)
  in
  let n = List.length ops in
  (* Oracle: logical state after each prefix of the workload. *)
  let odev = Device.create ~size:device_size () in
  Sq.mkfs odev;
  let ofs =
    match Sq.mount odev with
    | Ok fs -> fs
    | Error e -> failwith ("oracle mount: " ^ Vfs.Errno.to_string e)
  in
  let oracle = Array.make (n + 1) (Logical.capture (module Squirrelfs) ofs) in
  List.iteri
    (fun i op ->
      Workload.apply (module Squirrelfs) ofs op;
      oracle.(i + 1) <- Logical.capture (module Squirrelfs) ofs)
    ops;
  (* Real run with crash probing at every fence. *)
  let dev = Device.create ~size:device_size () in
  Sq.Mount.mkfs ~csum dev;
  let fs =
    match Sq.mount dev with
    | Ok fs -> fs
    | Error e -> failwith ("mount: " ^ Vfs.Errno.to_string e)
  in
  if faulty then Device.set_fault_plan dev faults;
  let cur_op = ref 0 in
  let cur_opv = ref None in
  let fences = ref 0 in
  let states = ref 0 in
  let deduped = ref 0 in
  let media_states = ref 0 in
  let detected = ref 0 in
  let quarantined = ref 0 in
  let eio_checks = ref 0 in
  let violations = ref [] in
  let violate detail =
    violations :=
      { v_op_index = !cur_op; v_op = !cur_opv; v_detail = detail }
      :: !violations
  in
  (* One scratch buffer per run (Delta engine): crash views are patched
     into it in place and mounted zero-copy via [of_view]. *)
  let scr = lazy (Device.scratch dev) in
  let mount_view v =
    match engine with
    | Delta ->
        let s = Lazy.force scr in
        Device.apply_view s v;
        Device.of_view s
    | Copy -> Device.of_image (Device.materialize dev v)
  in
  (* Content-determined part of a crash state's verdict: every check that
     depends only on the image bytes (superblock, raw invariants, mount,
     degraded-on-pure-image, fsck, capture). The oracle comparison stays
     outside — it depends on which ops bracketed the fence, not on the
     image — so memoizing this pair by content hash is sound. *)
  let check_state v : string list * Logical.t option =
    let dbg m = if Sys.getenv_opt "CRASHCHECK_DEBUG" <> None then Printf.eprintf "    %s\n%!" m in
    let bad = ref [] in
    let push m = bad := m :: !bad in
    let d2 = mount_view v in
    dbg "raw fsck";
    (match Layout.Records.Superblock.read d2 with
    | Some sb ->
        (match Sq.Fsck.check_raw d2 sb.Layout.Records.Superblock.geometry with
        | [] -> ()
        | errs -> push ("raw invariants: " ^ String.concat " | " errs))
    | None -> push "crash image has no superblock");
    dbg "mounting";
    let cap =
      match Sq.mount d2 with
      | Error e ->
          push ("crash image fails to mount: " ^ Vfs.Errno.to_string e);
          None
      | Ok fs2 -> (
          (* On a csum volume, a pure crash image (no media faults were
             injected into it) must never trip the media pre-pass: SSU
             orders every seal before its record's commit, so quarantine
             here means a code path published an unsealed record. This is
             how the harness catches Buggy_* variants on csum volumes. *)
          if csum && (Sq.Mount.last_stats ()).Sq.Mount.degraded then
            push
              "media quarantine on a pure crash image (committed record \
               without a valid checksum)";
          dbg "fsck";
          (match Sq.Fsck.check fs2 with
          | [] -> ()
          | errs -> push ("fsck: " ^ String.concat " | " errs));
          dbg "capture";
          match Logical.capture (module Squirrelfs) fs2 with
          | exception Failure msg ->
              push ("capture: " ^ msg);
              None
          | got -> Some got)
    in
    (List.rev !bad, cap)
  in
  (* Verdict caches: caller-carried when a [?memo] is shared across
     workloads, local otherwise. The [seen] tables are always local to
     this workload — [states_deduped] counts duplicates within one
     workload only, so the report does not depend on memo lifetime. *)
  let memo, memo_media =
    match memo with
    | Some m -> (m.m_states, m.m_media)
    | None -> (Hashtbl.create 512, Hashtbl.create 128)
  in
  let seen = Hashtbl.create 256 and seen_media = Hashtbl.create 64 in
  let check_image v ~legal =
    incr states;
    if Sys.getenv_opt "CRASHCHECK_DEBUG" <> None then Printf.eprintf "  image %d (op %d)\n%!" !states !cur_op;
    let bads, cap =
      match engine with
      | Copy -> check_state v
      | Delta -> (
          let h = Device.view_hash dev v in
          if Hashtbl.mem seen h then incr deduped else Hashtbl.replace seen h ();
          match Hashtbl.find_opt memo h with
          | Some verdict -> verdict
          | None ->
              let verdict = check_state v in
              Hashtbl.replace memo h verdict;
              verdict)
    in
    List.iter violate bads;
    match cap with
    | None -> ()
    | Some got ->
        if
          not
            (List.exists (fun st -> Logical.equal ~compare_data got st) legal)
        then
          violate
            (Format.asprintf
               "recovered state matches neither pre- nor post-op state; \
                got %a"
               Logical.pp got)
  in
  (* A crash image with injected media damage (torn / stuck lines) is not
     a legal SSU state, so no logical comparison applies; the contract is
     graceful handling only: mount either succeeds (possibly degraded,
     with the damage quarantined) or refuses with a clean error — it must
     never raise, and neither must fsck on the mounted result. *)
  let check_media_state v : string list =
    let d2 = mount_view v in
    match Sq.mount d2 with
    | exception e ->
        [ "media crash image: mount raised " ^ Printexc.to_string e ]
    | Error _ -> []
    | Ok fs2 -> (
        match Sq.Fsck.check fs2 with
        | _ -> []
        | exception e ->
            [ "media crash image: fsck raised " ^ Printexc.to_string e ])
  in
  let check_media_image v =
    incr media_states;
    let bads =
      match engine with
      | Copy -> check_media_state v
      | Delta -> (
          let h = Device.view_hash dev v in
          if Hashtbl.mem seen_media h then incr deduped
          else Hashtbl.replace seen_media h ();
          match Hashtbl.find_opt memo_media h with
          | Some verdict -> verdict
          | None ->
              let verdict = check_media_state v in
              Hashtbl.replace memo_media h verdict;
              verdict)
    in
    List.iter violate bads
  in
  let probe d ~legal =
    incr fences;
    List.iter (fun v -> check_image v ~legal)
      (Device.crash_views ~max_images:max_images_per_fence d);
    if media then
      List.iter check_media_image
        (Device.crash_views_faulty ~max_images:media_images_per_fence d)
  in
  Device.set_fence_hook dev
    (Some
       (fun d ->
         let legal = [ oracle.(!cur_op); oracle.(min n (!cur_op + 1)) ] in
         probe d ~legal));
  List.iteri
    (fun i op ->
      cur_op := i;
      cur_opv := Some op;
      if Sys.getenv_opt "CRASHCHECK_DEBUG" <> None then
        Printf.eprintf "op %d: %s\n%!" i
          (Format.asprintf "%a" Workload.pp_op op);
      apply_real fs op)
    ops;
  Device.set_fence_hook dev None;
  (* Final durable state must equal the oracle's final state exactly. *)
  cur_op := n;
  cur_opv := None;
  probe dev ~legal:[ oracle.(n) ];
  (* Phase B: permanent corruption. Flip one seeded bit in the sealed
     (checksummed) region of up to [bit_flips] committed inode records,
     then require the full detection pipeline: the scrubber flags every
     damaged line, a remount comes up degraded with the damaged inodes
     quarantined, reads of their paths return a clean EIO, and the rest
     of the tree stays accessible. *)
  if faulty && faults.Faults.Plan.bit_flips > 0 then begin
    let geo = fs.Sq.Fsctx.geo in
    let rng = Random.State.make [| faults.Faults.Plan.seed; 0xB17F11 |] in
    let targets = pick_k rng faults.Faults.Plan.bit_flips (live_objects fs) in
    let sealed_bytes =
      List.concat_map
        (fun (off, len) -> List.init len (fun i -> off + i))
        Layout.Records.Inode.sealed_ranges
    in
    let flips =
      List.map
        (fun (path, ino) ->
          let base = Layout.Geometry.inode_off geo ~ino in
          let byte = List.nth sealed_bytes
              (Random.State.int rng (List.length sealed_bytes))
          in
          let bit = Random.State.int rng 8 in
          let off = base + byte in
          Device.flip_bit dev ~off ~bit;
          (path, ino, off))
        targets
    in
    (* A workload can finish with an empty tree (everything unlinked);
       then there is nothing to corrupt and nothing to check. *)
    if flips <> [] then begin
    (* Scrubber: every flipped line must fail its line ECC. *)
    let bad = Device.scrub dev in
    List.iter
      (fun (path, _ino, off) ->
        let line = off - (off mod Device.line_size) in
        if not (List.mem line bad) then
          violate
            (Printf.sprintf "scrub missed flipped line 0x%x (inode of %s)"
               line path))
      flips;
    (* Degraded remount of the damaged durable image. *)
    (match Sq.mount (Device.of_image (Device.image_durable dev)) with
    | Error e ->
        violate
          ("damaged volume fails to mount degraded: " ^ Vfs.Errno.to_string e)
    | exception e ->
        violate ("damaged volume: mount raised " ^ Printexc.to_string e)
    | Ok fs3 ->
        let ms = Sq.Mount.last_stats () in
        if not ms.Sq.Mount.degraded then
          violate "remount after metadata corruption is not degraded";
        quarantined :=
          !quarantined + ms.Sq.Mount.quarantined_inodes
          + ms.Sq.Mount.quarantined_pages;
        List.iter
          (fun (path, ino, _off) ->
            if Faults.Quarantine.mem_ino fs3.Sq.Fsctx.quar ino then
              incr detected
            else
              violate
                (Printf.sprintf
                   "corrupt inode %d (%s) not quarantined on remount" ino path);
            (match Sq.stat fs3 path with
            | Error Vfs.Errno.EIO -> incr eio_checks
            | Error e ->
                violate
                  (Printf.sprintf "stat %s on quarantined inode: %s (want EIO)"
                     path (Vfs.Errno.to_string e))
            | Ok _ ->
                violate
                  (Printf.sprintf "stat %s succeeded on a quarantined inode"
                     path)
            | exception e ->
                violate
                  (Printf.sprintf "stat %s raised %s (want EIO result)" path
                     (Printexc.to_string e))))
          flips;
        (* The undamaged remainder of the tree must stay readable. *)
        (match Sq.readdir fs3 "/" with
        | Ok _ -> ()
        | Error e ->
            violate ("degraded mount cannot list /: " ^ Vfs.Errno.to_string e)))
    end
  end;
  let dstats = Device.stats dev in
  {
    workloads = 1;
    ops_run = n;
    fences_probed = !fences;
    crash_states = !states;
    states_deduped = !deduped;
    media_states = !media_states;
    faults_injected =
      dstats.Pmem.Stats.bitflips + dstats.Pmem.Stats.torn_lines
      + dstats.Pmem.Stats.stuck_lines + dstats.Pmem.Stats.read_faults;
    faults_detected = !detected;
    faults_quarantined = !quarantined;
    eio_checks = !eio_checks;
    violations = List.rev !violations;
  }

let run_suite ?device_size ?max_images_per_fence ?media_images_per_fence
    ?compare_data ?faults ?engine ?progress workloads =
  let total = List.length workloads in
  (* One verdict memo for the whole suite: every workload runs at the
     same device size, so content-determined verdicts carry over. *)
  let memo = memo_create () in
  List.fold_left
    (fun (i, acc) w ->
      (match progress with Some f -> f i total | None -> ());
      ( i + 1,
        merge acc
          (run_workload ?device_size ?max_images_per_fence
             ?media_images_per_fence ?compare_data ?faults ?engine ~memo w) ))
    (0, empty) workloads
  |> snd

let pp_report ppf r =
  Format.fprintf ppf
    "workloads=%d ops=%d fences=%d crash-states=%d deduped=%d violations=%d"
    r.workloads r.ops_run r.fences_probed r.crash_states r.states_deduped
    (List.length r.violations);
  if
    r.media_states + r.faults_injected + r.faults_detected
    + r.faults_quarantined + r.eio_checks
    > 0
  then
    Format.fprintf ppf
      "@.faults: media-states=%d injected=%d detected=%d quarantined=%d \
       eio-checks=%d"
      r.media_states r.faults_injected r.faults_detected r.faults_quarantined
      r.eio_checks;
  List.iteri
    (fun i v ->
      if i < 10 then
        Format.fprintf ppf "@.  [op %d%s] %s" v.v_op_index
          (match v.v_op with
          | Some op -> Format.asprintf " %a" Workload.pp_op op
          | None -> "")
          v.v_detail)
    r.violations
