.PHONY: all build check test faultcheck-smoke crashcheck bench clean

all: build

build:
	dune build

# Tier-1 gate: full build plus the complete test suite.
check:
	dune build && dune runtest

test: check

# Fast end-to-end exercise of the media-fault pipeline: checksummed
# volume, seeded bit flips, scrub, degraded remount, EIO checks.
faultcheck-smoke: build
	dune exec bin/faultcheck.exe -- --smoke --flips 2 --torn 0.2

crashcheck: build
	dune exec bin/crashcheck_cli.exe -- --systematic --buggy

bench: build
	dune exec bench/main.exe

clean:
	dune clean
