.PHONY: all build check test faultcheck-smoke fuzz-smoke serve-smoke enum-smoke datapath-smoke largevol-smoke snap-smoke crashcheck bench bench-json bench-json-quick serve-json serve-json-quick clean

all: build

# Tier-1 gate: full build plus the complete test suite, then the fuzzer
# smoke matrix and a quick states/sec trajectory point (BENCH_fuzz.json).
check:
	dune build && dune runtest
	$(MAKE) fuzz-smoke
	$(MAKE) enum-smoke
	$(MAKE) serve-smoke
	$(MAKE) datapath-smoke
	$(MAKE) largevol-smoke
	$(MAKE) bench-json-quick
	$(MAKE) snap-smoke
	$(MAKE) serve-json-quick

build:
	dune build

test: check

# Small seed-matrix fuzzing run: a few clean seeds (any violation is an
# SSU bug) plus one mutant-rediscovery run that must re-find every
# Buggy_* variant with a <= 6-op shrunk reproducer.
fuzz-smoke: build
	@for s in 1 2 3; do \
	  echo "== fuzz --seed $$s (clean) =="; \
	  dune exec bin/fuzz.exe -- --seed $$s --iters 12 --op-budget 6 \
	    --buggy-rate 0 || exit 2; \
	done
	@echo "== fuzz --expect-buggy =="
	dune exec bin/fuzz.exe -- --seed 1 --iters 40 --op-budget 6 --expect-buggy

# Bounded-enumeration smoke: the complete clean seq-2 sweep over the
# canonical universe (must be quiet through both the crash oracle and
# the SSU trace checker, with exactly-reconciling coverage accounting;
# writes the machine-readable coverage record for CI), then the mutant
# leg: with the Buggy_* alphabet extension every mutant kind must be
# flagged by BOTH checkers with a <= 3-op shrunk reproducer.
enum-smoke: build
	@echo "== fuzz --enum (clean seq-2 sweep) =="
	dune exec bin/fuzz.exe -- --enum --coverage-out ENUM_coverage.json
	@echo "== fuzz --enum --expect-buggy =="
	dune exec bin/fuzz.exe -- --enum --expect-buggy

# Concurrent-path smoke: a short Zipf client load through the request
# frontend (multi-domain, exercising the sharded lock table and the
# whole-FS fallback), then an interleaved 2-op fuzz batch — every
# lock-respecting schedule crash-checked clean, and all three Buggy_*
# mutants flagged by both the oracle and the SSU trace checker.
# Nonzero exit on any violation.
serve-smoke: build
	@echo "== serve: 200 clients x 20 ops, -j 2 =="
	dune exec bin/serve.exe -- --clients 200 --ops 20 -j 2 --seed 7 --quiet
	@echo "== fuzz --interleaved (clean) =="
	dune exec bin/fuzz.exe -- --interleaved --seed 1 --pairs 25
	@echo "== fuzz --interleaved --expect-buggy =="
	dune exec bin/fuzz.exe -- --interleaved --expect-buggy

# Split-data-path smoke: exact fence counts for the coalesced write
# schedule (in-place = 1 sfence, extending append = 2, against the
# legacy 2/3 ablation) and open-handle vs path-resolving throughput.
# Exits non-zero on any regression (see the `datapath` bench section).
datapath-smoke: build
	@echo "== bench datapath (fence schedule + handle throughput) =="
	dune exec bench/main.exe -- datapath

# Large-sparse-volume smoke: mkfs + mount + a 100k-file create/stat
# sweep on a 4 GiB lazily-backed volume, gated on near-constant mkfs
# and empty-mount wall time and on resident memory staying a small
# fraction of the volume (exit 2 if the dense scalability wall is
# back). A sparse fuzz leg cross-checks that forcing the sparse
# representation on the fuzzing volume stays violation-free.
# `bench largevol-full` is the 18 GiB / 1M-file version (EXPERIMENTS.md).
largevol-smoke: build
	@echo "== bench largevol (4 GiB sparse volume, 100k files) =="
	dune exec bench/main.exe -- largevol
	@echo "== fuzz --sparse (clean) =="
	dune exec bin/fuzz.exe -- --seed 1 --iters 12 --op-budget 6 \
	  --buggy-rate 0 --sparse
	@echo "== fuzz --enum --sparse =="
	dune exec bin/fuzz.exe -- --enum --sparse

# Snapshot smoke: three clean snapshot/rollback workloads crash-checked
# through the full delta-view probe (every enumerated image must pass
# both the crash oracle and the SSU trace checker), the torn-commit
# snapshot mutant flagged by both checkers, then the snapshot latency
# gauges written into BENCH_fuzz.json — exit 2 if snapshot creation on
# the 4 GiB sparse volume exceeds 10 ms or scales with volume size
# instead of the dirty set, or if the scrubber misreads an intact pin.
snap-smoke: build
	@echo "== fuzz --snap-smoke =="
	dune exec bin/fuzz.exe -- --snap-smoke
	@echo "== bench snap-json (snapshot latency gates) =="
	dune exec bench/main.exe -- snap-json

# Fast end-to-end exercise of the media-fault pipeline: checksummed
# volume, seeded bit flips, scrub, degraded remount, EIO checks.
faultcheck-smoke: build
	dune exec bin/faultcheck.exe -- --smoke --flips 2 --torn 0.2

crashcheck: build
	dune exec bin/crashcheck_cli.exe -- --systematic --buggy

bench: build
	dune exec bench/main.exe

# States/sec perf trajectory, machine-readable: legacy-copy vs delta-view
# engines plus the -j scaling section (work-stealing scheduler; iteration
# count scales with the job count; reports speedup, parallel_efficiency =
# speedup/jobs, host_cores, and per-shard iter/chunk/wall stats), written
# to BENCH_fuzz.json. Both variants warn loudly when -j N is slower than
# -j 1 on the same work; the full variant additionally exits non-zero —
# but only on hosts with >1 core, where a speedup is physically possible.
# The quick variant is part of `make check`.
bench-json: build
	dune exec bench/main.exe -- fuzz-json

bench-json-quick: build
	dune exec bench/main.exe -- fuzz-json-quick

# Multi-client serving trajectory, machine-readable: ops/sec, per-op
# latency quantiles, fairness, lock retries/fallbacks, and the -j 1
# determinism cross-check (exit 2 on mismatch), written to
# BENCH_serve.json. Same host_cores > 1 gating as bench-json.
serve-json: build
	dune exec bench/main.exe -- serve-json

serve-json-quick: build
	dune exec bench/main.exe -- serve-json-quick

clean:
	dune clean
