/* lseek(SEEK_DATA/SEEK_HOLE) for the sqfs image loader: walking a
   host-sparse multi-GB volume file must skip its holes at the syscall
   level — reading them back as zeroes costs the full logical size.

   Both calls return the resulting offset, or -1 when there is no
   further data (ENXIO), or -2 when the filesystem does not support
   data/hole seeking (callers fall back to a dense scan). */

#include <caml/mlvalues.h>
#include <errno.h>
#include <sys/types.h>
#include <unistd.h>

#ifndef SEEK_DATA
#define SEEK_DATA 3
#endif
#ifndef SEEK_HOLE
#define SEEK_HOLE 4
#endif

CAMLprim value sqfs_lseek_data(value vfd, value voff)
{
  off_t r = lseek(Int_val(vfd), (off_t)Long_val(voff), SEEK_DATA);
  if (r < 0)
    return Val_long(errno == ENXIO ? -1 : -2);
  return Val_long((long)r);
}

CAMLprim value sqfs_lseek_hole(value vfd, value voff)
{
  off_t r = lseek(Int_val(vfd), (off_t)Long_val(voff), SEEK_HOLE);
  if (r < 0)
    return Val_long(-2);
  return Val_long((long)r);
}
