(* fuzz: the Chipmunk-style crash-state fuzzer.

     fuzz --seed 1 --iters 200                 -- fuzz, shrink any failures
     fuzz --seed 1 --iters 60 --expect-buggy   -- must re-find all Buggy_*
     fuzz --buggy-rate 0 --iters 50            -- clean fuzzing: must be quiet
     fuzz -j 4 --seed 1 --iters 200            -- 4 domains, same report
     fuzz --replay "create /a; buggy-write /a 64"
                                               -- re-run a shrunk reproducer *)

open Cmdliner

let latency_of optane = if optane then Some Pmem.Latency.optane else None

let engine_of = function
  | "copy" -> Crashcheck.Harness.Copy
  | "delta" -> Crashcheck.Harness.Delta
  | s ->
      prerr_endline ("fuzz: unknown engine " ^ s ^ " (want copy|delta)");
      exit 1

let replay_cmd line images device_kib optane engine =
  match Fuzzer.Repro.of_cli line with
  | Error msg ->
      prerr_endline ("replay: " ^ msg);
      exit 1
  | Ok ops -> (
      let res =
        Fuzzer.Exec.run ~device_size:(device_kib * 1024) ~max_images_per_fence:images
          ?latency:(latency_of optane) ~engine ops
      in
      Format.printf "%a@." Crashcheck.Harness.pp_report res.Fuzzer.Exec.o_report;
      match res.Fuzzer.Exec.o_fail with
      | Some (cp, detail) ->
          Printf.printf "FAIL at op %d / fence %d / image %d: %s\n" cp.Fuzzer.Exec.cp_op
            cp.Fuzzer.Exec.cp_fence cp.Fuzzer.Exec.cp_image detail;
          exit 2
      | None ->
          print_endline "clean";
          exit 0)

let run seed iters op_budget images buggy_rate device_kib torn stuck optane no_shrink
    jobs engine replay expect_buggy =
  let engine = engine_of engine in
  match replay with
  | Some line -> replay_cmd line images device_kib optane engine
  | None ->
      let faults =
        if torn > 0. || stuck > 0. then
          Faults.Plan.make ~seed ~torn_line_rate:torn ~stuck_line_rate:stuck ()
        else Faults.none
      in
      let cfg =
        {
          Fuzzer.default_cfg with
          seed;
          iters;
          op_budget;
          buggy_rate;
          max_images = images;
          device_size = device_kib * 1024;
          faults;
          latency = latency_of optane;
          shrink = not no_shrink;
          engine;
        }
      in
      let cores = Domain.recommended_domain_count () in
      if jobs > cores then
        Printf.eprintf
          "fuzz: warning: -j %d exceeds the %d core(s) this host offers; \
           domains will time-slice\n\
           %!"
          jobs cores;
      let r, shards = Fuzzer.Parallel.run_stats ~jobs cfg in
      Format.printf "%a@." Fuzzer.pp_report r;
      if jobs > 1 then
        Format.printf "%a@." Fuzzer.Parallel.pp_shard_stats shards;
      if expect_buggy then begin
        (* acceptance: every mutant re-discovered, every reproducer small *)
        let kinds = Fuzzer.kinds_found r in
        let ok = ref true in
        List.iter
          (fun k ->
            let hit = List.mem k kinds in
            if not hit then ok := false;
            Printf.printf "re-discovered buggy-%s: %s\n" (Fuzzer.buggy_kind_name k)
              (if hit then "yes" else "NO"))
          Fuzzer.all_buggy_kinds;
        List.iter
          (fun f ->
            if List.length f.Fuzzer.fd_min > 6 then begin
              ok := false;
              Printf.printf "reproducer of %d ops exceeds the 6-op bound\n"
                (List.length f.Fuzzer.fd_min)
            end)
          r.Fuzzer.r_found;
        exit (if !ok then 0 else 2)
      end
      else if buggy_rate = 0. then
        (* clean fuzzing: any violation is an SSU bug in the real code *)
        exit (if r.Fuzzer.r_harness.Crashcheck.Harness.violations = [] then 0 else 2)
      else exit 0

let () =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed") in
  let iters =
    Arg.(value & opt int 50 & info [ "iters" ] ~docv:"N" ~doc:"Sequences to generate")
  in
  let op_budget =
    Arg.(value & opt int 8 & info [ "op-budget" ] ~docv:"N" ~doc:"Ops per sequence")
  in
  let images =
    Arg.(value & opt int 8 & info [ "images" ] ~doc:"Max crash images per fence")
  in
  let buggy_rate =
    Arg.(
      value
      & opt float 0.15
      & info [ "buggy-rate" ] ~docv:"P"
          ~doc:"Probability an op slot emits a mis-ordered Buggy_* mutant")
  in
  let device_kib =
    Arg.(value & opt int 256 & info [ "device-kib" ] ~doc:"Device size in KiB")
  in
  let torn =
    Arg.(
      value & opt float 0. & info [ "torn" ] ~docv:"P" ~doc:"Torn-line rate (media images)")
  in
  let stuck =
    Arg.(
      value
      & opt float 0.
      & info [ "stuck" ] ~docv:"P" ~doc:"Stuck-line rate (media images)")
  in
  let optane =
    Arg.(value & flag & info [ "optane" ] ~doc:"Charge Optane-like simulated latency")
  in
  let no_shrink = Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip shrinking") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run iterations on N domains via a chunked work-stealing \
             scheduler (clamped to the iteration count); the merged report \
             is bit-identical to -j 1 after canonicalization, and per-shard \
             iteration/chunk/wall stats are printed")
  in
  let engine =
    Arg.(
      value
      & opt string "delta"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Crash-state engine: delta (zero-copy views + memoized fsck, the \
             default) or copy (legacy materialized images)")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"OPS" ~doc:"Replay a semicolon-separated reproducer")
  in
  let expect_buggy =
    Arg.(
      value & flag
      & info [ "expect-buggy" ]
          ~doc:"Fail unless all Buggy_* mutants are re-discovered with <= 6-op reproducers")
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "fuzz" ~doc:"Crash-state fuzzing of SquirrelFS with a differential oracle")
          Term.(
            const run $ seed $ iters $ op_budget $ images $ buggy_rate $ device_kib
            $ torn $ stuck $ optane $ no_shrink $ jobs $ engine $ replay $ expect_buggy)))
