(* fuzz: the Chipmunk-style crash-state fuzzer.

     fuzz --seed 1 --iters 200                 -- fuzz, shrink any failures
     fuzz --seed 1 --iters 60 --expect-buggy   -- must re-find all Buggy_*
     fuzz --buggy-rate 0 --iters 50            -- clean fuzzing: must be quiet
     fuzz -j 4 --seed 1 --iters 200            -- 4 domains, same report
     fuzz --replay "create /a; buggy-write /a 64"
                                               -- re-run a shrunk reproducer *)

open Cmdliner

let latency_of optane = if optane then Some Pmem.Latency.optane else None

let engine_of = function
  | "copy" -> Crashcheck.Harness.Copy
  | "delta" -> Crashcheck.Harness.Delta
  | s ->
      prerr_endline ("fuzz: unknown engine " ^ s ^ " (want copy|delta)");
      exit 1

(* Re-execute [ops] with a recorder attached and return the event list
   alongside the outcome. Used for --trace and the --expect-buggy
   trace-checker leg; tracing never perturbs the outcome, so the re-run
   reproduces exactly what the fuzzing run saw. *)
let traced_run ?(faults = Faults.none) ?sparse ~device_kib ~images ~optane
    ~engine ops =
  let r = Obs.Recorder.create () in
  let out =
    Fuzzer.Exec.run ~device_size:(device_kib * 1024) ?sparse
      ~max_images_per_fence:images
      ~faults ?latency:(latency_of optane) ~engine ~trace:r ops
  in
  (out, Obs.Recorder.to_list r)

let dump_trace file events =
  Obs.Chrome.to_file file events;
  Printf.printf "trace: %d events -> %s (chrome://tracing)\n" (List.length events) file;
  match Obs.Ssu.check events with
  | Ok () -> print_endline "trace-checker: clean"
  | Error v ->
      Format.printf "trace-checker: %a@." Obs.Ssu.pp_violation v;
      (match List.nth_opt events v.Obs.Ssu.v_index with
      | Some e -> Format.printf "  offending event: %a@." Obs.Event.pp e
      | None -> ())

let replay_cmd line images device_kib sparse optane engine trace =
  match Fuzzer.Repro.of_cli line with
  | Error msg ->
      prerr_endline ("replay: " ^ msg);
      exit 1
  | Ok ops -> (
      let res, events =
        traced_run ?sparse ~device_kib ~images ~optane ~engine ops
      in
      Format.printf "%a@." Crashcheck.Harness.pp_report res.Fuzzer.Exec.o_report;
      (match trace with Some file -> dump_trace file events | None -> ());
      match res.Fuzzer.Exec.o_fail with
      | Some (cp, detail) ->
          Printf.printf "FAIL at op %d / fence %d / image %d: %s\n" cp.Fuzzer.Exec.cp_op
            cp.Fuzzer.Exec.cp_fence cp.Fuzzer.Exec.cp_image detail;
          exit 2
      | None ->
          print_endline "clean";
          exit 0)

(* --interleaved: 2-op pairs, every lock-respecting interleaving run
   through the crash oracle and the SSU trace checker (see
   [Fuzzer.Interleave]). Clean pairs must be quiet; with --expect-buggy,
   three fixed mutant pairs must each be flagged by BOTH checkers. *)
let interleaved_cmd seed pairs max_inter expect_buggy =
  if expect_buggy then begin
    let results = Fuzzer.Interleave.run_buggy ~max_interleavings:max_inter () in
    let ok = ref true in
    List.iter
      (fun b ->
        let hit = b.Fuzzer.Interleave.b_oracle and ssu = b.Fuzzer.Interleave.b_ssu in
        if not (hit && ssu) then ok := false;
        Printf.printf "interleaved buggy-%s: oracle=%s trace-checker=%s\n"
          b.Fuzzer.Interleave.b_name
          (if hit then "flagged" else "MISSED")
          (if ssu then "flagged" else "MISSED"))
      results;
    exit (if !ok then 0 else 2)
  end
  else begin
    let r = Fuzzer.Interleave.run ~seed ~pairs ~max_interleavings:max_inter () in
    Printf.printf
      "interleaved: %d pairs (%d disjoint, %d overlapping), %d schedules \
       (%d past cap skipped), %d crash states (%d deduped)\n"
      r.Fuzzer.Interleave.i_pairs r.Fuzzer.Interleave.i_disjoint
      r.Fuzzer.Interleave.i_overlapping r.Fuzzer.Interleave.i_schedules
      r.Fuzzer.Interleave.i_skipped r.Fuzzer.Interleave.i_states
      r.Fuzzer.Interleave.i_deduped;
    List.iter
      (fun p ->
        Format.printf "FAIL pair %d: %a || %a@."
          p.Fuzzer.Interleave.pr_index Crashcheck.Workload.pp_op
          p.Fuzzer.Interleave.pr_a Crashcheck.Workload.pp_op
          p.Fuzzer.Interleave.pr_b;
        (match p.Fuzzer.Interleave.pr_oracle_fail with
        | Some d -> Printf.printf "  oracle: %s\n" d
        | None -> ());
        match p.Fuzzer.Interleave.pr_ssu_fail with
        | Some d -> Printf.printf "  trace-checker: %s\n" d
        | None -> ())
      r.Fuzzer.Interleave.i_failures;
    exit (if r.Fuzzer.Interleave.i_failures = [] then 0 else 2)
  end

(* --enum: deterministic bounded enumeration (Fuzzer.Enum). Clean runs
   must be quiet and the coverage arithmetic must reconcile exactly; with
   --expect-buggy the alphabet is widened with the three Buggy_* mutants
   and each must be flagged by BOTH the crash oracle (with a <= 3-op
   shrunk reproducer) and the SSU trace checker. *)
let enum_cmd jobs images device_kib sparse no_shrink depth coverage_out
    expect_buggy =
  let cfg =
    {
      Fuzzer.Enum.default_cfg with
      Fuzzer.Enum.depth;
      buggy = expect_buggy;
      max_images = images;
      device_size = device_kib * 1024;
      sparse;
      shrink = not no_shrink;
    }
  in
  let r = Fuzzer.Enum.run ~jobs cfg in
  Format.printf "%a@." Fuzzer.Enum.pp_report r;
  (match coverage_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Fuzzer.Enum.coverage_json r);
      output_char oc '\n';
      close_out oc;
      Printf.printf "coverage -> %s\n" file);
  let ok = ref true in
  if not (Fuzzer.Enum.reconciles r) then begin
    ok := false;
    print_endline "enum: coverage accounting does NOT reconcile"
  end;
  if expect_buggy then begin
    let okinds = Fuzzer.Enum.kinds_found r in
    let skinds = Fuzzer.Enum.ssu_kinds_found r in
    List.iter
      (fun k ->
        let o = List.mem k okinds and s = List.mem k skinds in
        if not (o && s) then ok := false;
        Printf.printf "enum buggy-%s: oracle=%s trace-checker=%s\n"
          (Fuzzer.buggy_kind_name k)
          (if o then "flagged" else "MISSED")
          (if s then "flagged" else "MISSED"))
      Fuzzer.all_buggy_kinds;
    List.iter
      (fun f ->
        if List.length f.Fuzzer.Enum.fd_min > 3 then begin
          ok := false;
          Printf.printf "enum reproducer of %d ops exceeds the 3-op bound\n"
            (List.length f.Fuzzer.Enum.fd_min)
        end;
        if
          not
            (List.exists (fun op -> Fuzzer.buggy_kind_of_op op <> None) f.Fuzzer.Enum.fd_min)
        then begin
          ok := false;
          Printf.printf "enum: mutant-free sequence failed the oracle: %s\n"
            f.Fuzzer.Enum.fd_detail
        end)
      r.Fuzzer.Enum.e_found
  end
  else if r.Fuzzer.Enum.e_found <> [] || r.Fuzzer.Enum.e_ssu_found <> [] then begin
    ok := false;
    print_endline "enum: clean sweep reported failures (see above)"
  end;
  exit (if !ok then 0 else 2)

(* --snap-smoke: deterministic snapshot-path acceptance. Leg 1 drives
   fixed snapshot/rollback sequences through the differential executor
   with an exhaustive per-fence image budget, so EVERY fence-point crash
   view during snapshot creation and rollback is probed: each must
   recover to the old table or the fully CRC-sealed new entry — a
   committed-but-torn entry is a raw-fsck violation the oracle reports.
   Leg 2 replays the mis-ordered creation mutant and requires BOTH the
   crash oracle and the SSU trace checker to flag it. *)
let snap_smoke_cmd () =
  let module W = Crashcheck.Workload in
  let ok = ref true in
  let smoke name ops =
    let out, events =
      traced_run ~device_kib:256 ~images:128 ~optane:false
        ~engine:Crashcheck.Harness.Delta ops
    in
    let ssu = Obs.Ssu.check events in
    (match out.Fuzzer.Exec.o_fail with
    | Some (_, d) ->
        ok := false;
        Printf.printf "snap-smoke %s: oracle FAIL: %s\n" name d
    | None -> ());
    (match ssu with
    | Error v ->
        ok := false;
        Format.printf "snap-smoke %s: trace-checker FAIL: %a@." name
          Obs.Ssu.pp_violation v
    | Ok () -> ());
    if out.Fuzzer.Exec.o_fail = None && ssu = Ok () then
      Printf.printf "snap-smoke %s: clean (%d crash states probed)\n" name
        out.Fuzzer.Exec.o_report.Crashcheck.Harness.crash_states
  in
  smoke "create"
    (Fuzzer.Gen.setup @ W.[ Snapshot "s0"; Write ("/a", 0, "after"); Snapshot "s1" ]);
  smoke "rollback"
    (Fuzzer.Gen.setup
    @ W.[
        Snapshot "s0";
        Write ("/a", 0, String.make 200 'x');
        Unlink "/d/f";
        Rollback "s0";
      ]);
  smoke "stacked"
    (Fuzzer.Gen.setup
    @ W.[
        Snapshot "s0";
        Rename ("/a", "/e/a");
        Snapshot "s1";
        Rollback "s1";
        Rollback "s0";
      ]);
  let mutant = Fuzzer.Gen.setup @ [ W.Buggy_snap "torn-snapshot-commit-ordering" ] in
  let out, events =
    traced_run ~device_kib:256 ~images:128 ~optane:false
      ~engine:Crashcheck.Harness.Delta mutant
  in
  let o = out.Fuzzer.Exec.o_fail <> None in
  let s = match Obs.Ssu.check events with Error _ -> true | Ok () -> false in
  if not (o && s) then ok := false;
  Printf.printf "snap-smoke buggy-snap: oracle=%s trace-checker=%s\n"
    (if o then "flagged" else "MISSED")
    (if s then "flagged" else "MISSED");
  exit (if !ok then 0 else 2)

let run seed iters op_budget images buggy_rate device_kib sparse_flag torn stuck
    optane no_shrink
    jobs engine replay expect_buggy trace metrics interleaved pairs max_inter enum depth
    coverage_out snap_smoke =
  let engine = engine_of engine in
  let sparse = if sparse_flag then Some true else None in
  if snap_smoke then snap_smoke_cmd ();
  if enum then
    enum_cmd jobs images device_kib sparse no_shrink depth coverage_out
      expect_buggy;
  if interleaved then interleaved_cmd seed pairs max_inter expect_buggy;
  match replay with
  | Some line -> replay_cmd line images device_kib sparse optane engine trace
  | None ->
      let faults =
        if torn > 0. || stuck > 0. then
          Faults.Plan.make ~seed ~torn_line_rate:torn ~stuck_line_rate:stuck ()
        else Faults.none
      in
      let cfg =
        {
          Fuzzer.default_cfg with
          seed;
          iters;
          op_budget;
          buggy_rate;
          max_images = images;
          device_size = device_kib * 1024;
          sparse;
          faults;
          latency = latency_of optane;
          shrink = not no_shrink;
          engine;
          collect_metrics = metrics;
        }
      in
      let cores = Domain.recommended_domain_count () in
      if jobs > cores then
        Printf.eprintf
          "fuzz: warning: -j %d exceeds the %d core(s) this host offers; \
           domains will time-slice\n\
           %!"
          jobs cores;
      let r, shards = Fuzzer.Parallel.run_stats ~jobs cfg in
      Format.printf "%a@." Fuzzer.pp_report r;
      if jobs > 1 then
        Format.printf "%a@." Fuzzer.Parallel.pp_shard_stats shards;
      (match trace with
      | None -> ()
      | Some file ->
          (* Trace a failing iteration if the run found one (the shrunk
             reproducer), otherwise iteration 0 of this seed. *)
          let ops =
            match r.Fuzzer.r_found with
            | f :: _ -> f.Fuzzer.fd_min
            | [] ->
                let rng = Random.State.make [| 0x5EED; seed; 0 |] in
                Fuzzer.Gen.sequence rng { Fuzzer.Gen.op_budget; buggy_rate }
          in
          let _, events =
            traced_run ~faults ?sparse ~device_kib ~images ~optane ~engine ops
          in
          dump_trace file events);
      if expect_buggy then begin
        (* acceptance: every mutant re-discovered, every reproducer small *)
        let kinds = Fuzzer.kinds_found r in
        let ok = ref true in
        List.iter
          (fun k ->
            let hit = List.mem k kinds in
            if not hit then ok := false;
            Printf.printf "re-discovered buggy-%s: %s\n" (Fuzzer.buggy_kind_name k)
              (if hit then "yes" else "NO"))
          Fuzzer.all_buggy_kinds;
        List.iter
          (fun f ->
            if List.length f.Fuzzer.fd_min > 6 then begin
              ok := false;
              Printf.printf "reproducer of %d ops exceeds the 6-op bound\n"
                (List.length f.Fuzzer.fd_min)
            end)
          r.Fuzzer.r_found;
        (* Second, independent leg: the trace-driven SSU checker must flag
           every mutant from the recorded store/flush/fence stream alone —
           no oracle, no crash images, just the persist ordering. Shrunk
           reproducers carry exactly the buggy ops that caused the
           violation, so a flagged trace is credited to those kinds. *)
        let flagged = ref [] in
        List.iter
          (fun f ->
            let kinds = List.filter_map Fuzzer.buggy_kind_of_op f.Fuzzer.fd_min in
            let fresh = List.filter (fun k -> not (List.mem k !flagged)) kinds in
            if fresh <> [] then begin
              let _, events =
                traced_run ?sparse ~device_kib ~images ~optane ~engine
                  f.Fuzzer.fd_min
              in
              match Obs.Ssu.check events with
              | Error v ->
                  flagged := fresh @ !flagged;
                  List.iter
                    (fun k ->
                      Format.printf "trace-checker flags buggy-%s: %a@."
                        (Fuzzer.buggy_kind_name k) Obs.Ssu.pp_violation v;
                      match List.nth_opt events v.Obs.Ssu.v_index with
                      | Some e -> Format.printf "  offending event: %a@." Obs.Event.pp e
                      | None -> ())
                    fresh
              | Ok () -> ()
            end)
          r.Fuzzer.r_found;
        List.iter
          (fun k ->
            if not (List.mem k !flagged) then begin
              ok := false;
              Printf.printf "trace-checker missed buggy-%s\n" (Fuzzer.buggy_kind_name k)
            end)
          Fuzzer.all_buggy_kinds;
        exit (if !ok then 0 else 2)
      end
      else if buggy_rate = 0. then
        (* clean fuzzing: any violation is an SSU bug in the real code *)
        exit (if r.Fuzzer.r_harness.Crashcheck.Harness.violations = [] then 0 else 2)
      else exit 0

let () =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed") in
  let iters =
    Arg.(value & opt int 50 & info [ "iters" ] ~docv:"N" ~doc:"Sequences to generate")
  in
  let op_budget =
    Arg.(value & opt int 8 & info [ "op-budget" ] ~docv:"N" ~doc:"Ops per sequence")
  in
  let images =
    Arg.(value & opt int 8 & info [ "images" ] ~doc:"Max crash images per fence")
  in
  let buggy_rate =
    Arg.(
      value
      & opt float 0.15
      & info [ "buggy-rate" ] ~docv:"P"
          ~doc:"Probability an op slot emits a mis-ordered Buggy_* mutant")
  in
  let device_kib =
    Arg.(value & opt int 256 & info [ "device-kib" ] ~doc:"Device size in KiB")
  in
  let sparse =
    Arg.(
      value & flag
      & info [ "sparse" ]
          ~doc:
            "Force the simulated device onto the sparse (lazily backed) \
             representation regardless of size. Coverage-equivalent to a \
             dense run: same ops, fences, violations and unique crash \
             states (duplicate-image counts may differ, since provably \
             no-op zero stores are pruned)")
  in
  let torn =
    Arg.(
      value & opt float 0. & info [ "torn" ] ~docv:"P" ~doc:"Torn-line rate (media images)")
  in
  let stuck =
    Arg.(
      value
      & opt float 0.
      & info [ "stuck" ] ~docv:"P" ~doc:"Stuck-line rate (media images)")
  in
  let optane =
    Arg.(value & flag & info [ "optane" ] ~doc:"Charge Optane-like simulated latency")
  in
  let no_shrink = Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip shrinking") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run iterations on N domains via a chunked work-stealing \
             scheduler (clamped to the iteration count); the merged report \
             is bit-identical to -j 1 after canonicalization, and per-shard \
             iteration/chunk/wall stats are printed")
  in
  let engine =
    Arg.(
      value
      & opt string "delta"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Crash-state engine: delta (zero-copy views + memoized fsck, the \
             default) or copy (legacy materialized images)")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"OPS" ~doc:"Replay a semicolon-separated reproducer")
  in
  let expect_buggy =
    Arg.(
      value & flag
      & info [ "expect-buggy" ]
          ~doc:
            "Fail unless all Buggy_* mutants are re-discovered with <= 6-op \
             reproducers AND the trace-driven SSU checker independently flags \
             each of them from its recorded persist stream")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Re-run one iteration (the first failing reproducer, or iteration \
             0 if clean; with --replay, the replayed ops) with structured \
             tracing and write a chrome://tracing JSON trace to FILE")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect and print an op-latency/device-traffic metrics registry")
  in
  let interleaved =
    Arg.(
      value & flag
      & info [ "interleaved" ]
          ~doc:
            "Concurrent mode: generate 2-op pairs, deterministically \
             enumerate every interleaving the sharded lock table permits \
             (disjoint pairs interleave at persist points, overlapping pairs \
             serialize), and run the crash oracle plus the SSU trace checker \
             over each schedule")
  in
  let pairs =
    Arg.(
      value & opt int 50
      & info [ "pairs" ] ~docv:"N" ~doc:"Op pairs to generate (with --interleaved)")
  in
  let max_inter =
    Arg.(
      value & opt int 64
      & info [ "max-interleavings" ] ~docv:"N"
          ~doc:
            "Cap on enumerated schedules per pair (skips are counted and \
             reported, never silent)")
  in
  let enum =
    Arg.(
      value & flag
      & info [ "enum" ]
          ~doc:
            "Bounded black-box enumeration: deterministically run every \
             bounded op sequence over the canonical universe (seq-2 \
             complete, seq-3 behind a relatedness frontier with --depth 3) \
             through the crash oracle and the SSU trace checker, and print \
             an exactly-reconciling coverage account. With --expect-buggy \
             the alphabet gains the Buggy_* mutants and each must be \
             flagged by both checkers")
  in
  let depth =
    Arg.(
      value & opt int 2
      & info [ "depth" ] ~docv:"D"
          ~doc:"Enumeration depth (with --enum): 2, or 3 for the frontier tier")
  in
  let coverage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-out" ] ~docv:"FILE"
          ~doc:"Write the enumeration coverage record as JSON to FILE (with --enum)")
  in
  let snap_smoke =
    Arg.(
      value & flag
      & info [ "snap-smoke" ]
          ~doc:
            "Deterministic snapshot-path smoke: probe every fence-point \
             crash view of fixed snapshot/rollback sequences with an \
             exhaustive image budget (old table or sealed new entry, never \
             torn), then require the mis-ordered creation mutant to be \
             flagged by both the crash oracle and the SSU trace checker")
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "fuzz" ~doc:"Crash-state fuzzing of SquirrelFS with a differential oracle")
          Term.(
            const run $ seed $ iters $ op_budget $ images $ buggy_rate $ device_kib
            $ sparse $ torn $ stuck $ optane $ no_shrink $ jobs $ engine $ replay $ expect_buggy
            $ trace $ metrics $ interleaved $ pairs $ max_inter $ enum $ depth
            $ coverage_out $ snap_smoke)))
