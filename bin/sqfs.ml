(* sqfs: operate SquirrelFS volumes stored in host image files.

   The simulated PM device is loaded from the image file, operated on
   (every operation is synchronous, so the device is quiescent when a
   command finishes), and written back.

     sqfs mkfs img [--size-mb N]
     sqfs info img
     sqfs fsck img
     sqfs tree img
     sqfs ls img /path          sqfs stat img /path
     sqfs mkdir img /path       sqfs create img /path
     sqfs write img /path data  sqfs cat img /path
     sqfs rm img /path          sqfs rmdir img /path
     sqfs mv img /src /dst      sqfs ln img /target /link
     sqfs snapshot img NAME     sqfs snapshots img
     sqfs rollback img NAME     sqfs snap-rm img NAME
     sqfs clone img NAME out    sqfs diff img A B
     sqfs scrub img   *)

open Cmdliner
module Device = Pmem.Device

external lseek_data : Unix.file_descr -> int -> int = "sqfs_lseek_data"
external lseek_hole : Unix.file_descr -> int -> int = "sqfs_lseek_hole"

let rec really_read fd buf off n =
  if n > 0 then begin
    let r = Unix.read fd buf off n in
    if r = 0 then raise End_of_file;
    really_read fd buf (off + r) (n - r)
  end

(* Load only the image file's data extents (SEEK_DATA/SEEK_HOLE) and
   hand the device their nonzero spans: a multi-GB host-sparse volume
   loads in O(backed data) time and memory — its holes are never read,
   never materialized, never zero-scanned. Filesystems without
   data/hole seeking fall back to streaming the whole file, still in
   O(backed data) memory. *)
let load_image img =
  let fd = Unix.openfile img [ Unix.O_RDONLY ] 0 in
  let len = (Unix.fstat fd).Unix.st_size in
  let chunk = Pmem.Sbuf.chunk_bytes in
  let block = 64 * 1024 in
  let buf = Bytes.create block in
  let zero = Bytes.make block '\000' in
  let spans = ref [] in
  (* read [start,stop) and emit its nonzero chunk-granular spans *)
  let scan_range start stop =
    ignore (Unix.lseek fd start Unix.SEEK_SET);
    let pos = ref start in
    while !pos < stop do
      let n = min block (stop - !pos) in
      really_read fd buf 0 n;
      if not (n = block && Bytes.equal buf zero) then begin
        let sub = ref 0 in
        while !sub < n do
          let m = min chunk (n - !sub) in
          if not (Bytes.equal (Bytes.sub buf !sub m) (Bytes.sub zero 0 m))
          then spans := (!pos + !sub, Bytes.sub_string buf !sub m) :: !spans;
          sub := !sub + m
        done
      end;
      pos := !pos + n
    done
  in
  let align_down x = x - (x mod chunk) in
  let rec walk off =
    if off < len then
      match lseek_data fd off with
      | -1 -> () (* no data at or after [off] *)
      | -2 -> raise Exit (* unsupported: dense fallback *)
      | d ->
          let d = align_down (min d len) in
          let h = match lseek_hole fd d with -2 -> len | h -> min h len in
          scan_range d h;
          walk (max h (d + 1))
  in
  (try walk 0 with Exit -> scan_range 0 len);
  Unix.close fd;
  Device.of_spans ~size:len (List.rev !spans)

let save_image img dev =
  let oc = open_out_bin img in
  if Device.is_sparse dev then begin
    (* Commands are synchronous, so the device is quiescent here and
       the visible content equals the durable content. Write only the
       backed spans and seek over the holes — the host file stays
       sparse, like the device. *)
    List.iter
      (fun (off, len) ->
        seek_out oc off;
        output_bytes oc (Device.read dev ~off ~len))
      (Device.backed_spans dev);
    (* pin the file length even when the volume ends in a hole *)
    let size = Device.size dev in
    if out_channel_length oc < size then begin
      seek_out oc (size - 1);
      output_char oc '\000'
    end
  end
  else output_bytes oc (Device.image_durable dev);
  close_out oc

(* {2 Snapshot sidecars}

   The on-volume table survives across invocations, but a snapshot's
   pin (its retained delta view) is process-volatile. sqfs persists
   each pin's delta in a host sidecar file [IMG.NAME.snap]: at mount it
   re-adopts every sidecar whose evidence still validates
   ([Snap.adopt] checks the slot id and the capture hash), and at exit
   it rewrites the sidecars from the now-current deltas — the image
   file and its sidecars always advance together, so the deltas stay
   exact however many commands mutate the volume in between. A sidecar
   that fails validation (edited image, stale copy) is reported and
   skipped: its snapshot keeps its table entry but degrades to
   unpinned, exactly like a pin lost to a crash. *)

let snap_magic = "SQSNAP1\n"
let sidecar_path img name = img ^ "." ^ name ^ ".snap"

let save_sidecar img name ~id ~hash ~saved =
  let oc = open_out_bin (sidecar_path img name) in
  output_string oc snap_magic;
  Printf.fprintf oc "%d %Lx %d\n" id hash (List.length saved);
  let b = Bytes.create 8 in
  List.iter
    (fun (idx, line) ->
      Bytes.set_int64_le b 0 (Int64.of_int idx);
      output_bytes oc b;
      output_bytes oc line)
    saved;
  close_out oc

let load_sidecar img name =
  let file = sidecar_path img name in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    let fin r = close_in ic; r in
    try
      let m = really_input_string ic (String.length snap_magic) in
      if m <> snap_magic then fin None
      else
        let id, hash, count =
          Scanf.sscanf (input_line ic) "%d %Lx %d" (fun a b c -> (a, b, c))
        in
        let saved =
          List.init count (fun _ ->
              let b = Bytes.create 8 in
              really_input ic b 0 8;
              let idx = Int64.to_int (Bytes.get_int64_le b 0) in
              let line = Bytes.create Device.line_size in
              really_input ic line 0 Device.line_size;
              (idx, line))
        in
        fin (Some (id, hash, saved))
    with _ -> fin None

let adopt_sidecars img fs =
  List.iter
    (fun (s : Layout.Snaptab.Slot.t) ->
      match load_sidecar img s.Layout.Snaptab.Slot.name with
      | None -> ()
      | Some (id, hash, saved) -> (
          match Snap.adopt fs s.Layout.Snaptab.Slot.name ~id ~hash ~saved with
          | Ok () -> ()
          | Error e ->
              Printf.eprintf "snapshot %s: sidecar rejected (%s); unpinned\n"
                s.Layout.Snaptab.Slot.name (Vfs.Errno.to_string e)))
    (Layout.Snaptab.list (fs.Squirrelfs.Fsctx.dev))

let sync_sidecars img fs =
  let dev = fs.Squirrelfs.Fsctx.dev in
  let table = Layout.Snaptab.list dev in
  List.iter
    (fun (i : Snap.info) ->
      match Snap.pin_delta fs i.Snap.i_name with
      | Some (hash, saved) ->
          save_sidecar img i.Snap.i_name ~id:i.Snap.i_id ~hash ~saved
      | None -> ())
    (Snap.list fs);
  (* reap sidecars whose snapshot left the table (deleted, or dropped
     by a rollback to an older capture) *)
  Array.iter
    (fun f ->
      let dir = Filename.dirname img and base = Filename.basename img in
      if
        String.length f > String.length base + 6
        && String.sub f 0 (String.length base + 1) = base ^ "."
        && Filename.check_suffix f ".snap"
      then
        let name =
          String.sub f
            (String.length base + 1)
            (String.length f - String.length base - 6)
        in
        if
          not
            (List.exists
               (fun (s : Layout.Snaptab.Slot.t) ->
                 s.Layout.Snaptab.Slot.name = name)
               table)
        then Sys.remove (Filename.concat dir f))
    (Sys.readdir (Filename.dirname img))

(* [trace]: record the command's persist stream (preceded by a durable-state
   snapshot preamble) and write chrome://tracing JSON when done. The
   recorder stays attached through unmount so its stores are captured too. *)
let with_fs ?trace img f =
  let dev = load_image img in
  match Squirrelfs.mount dev with
  | Error e ->
      Printf.eprintf "mount %s: %s\n" img (Vfs.Errno.to_string e);
      exit 1
  | Ok fs ->
      let rec_ = Option.map (fun _ -> Obs.Recorder.create ()) trace in
      (match rec_ with Some r -> Squirrelfs.Tracing.attach fs r | None -> ());
      adopt_sidecars img fs;
      let r = f dev fs in
      Squirrelfs.unmount fs;
      (match (trace, rec_) with
      | Some file, Some rc ->
          Squirrelfs.Tracing.detach fs;
          let events = Obs.Recorder.to_list rc in
          Obs.Chrome.to_file file events;
          Printf.eprintf "trace: %d events -> %s (chrome://tracing)\n"
            (List.length events) file
      | _ -> ());
      sync_sidecars img fs;
      save_image img dev;
      r

let or_die what = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s: %s\n" what (Vfs.Errno.to_string e);
      exit 1

(* arguments *)
let img = Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")
let path n = Arg.(required & pos n (some string) None & info [] ~docv:"PATH")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the command's structured persist trace (stores, flushes, \
           fences, op spans) and write chrome://tracing JSON to FILE")

let cmd_mkfs =
  let size_mb =
    Arg.(value & opt int 16 & info [ "size-mb" ] ~doc:"Device size in MiB")
  in
  let run img size_mb =
    let dev = Device.create ~size:(size_mb * 1024 * 1024) () in
    Squirrelfs.mkfs dev;
    save_image img dev;
    Printf.printf "created %d MiB SquirrelFS volume in %s\n" size_mb img
  in
  Cmd.v (Cmd.info "mkfs" ~doc:"Create a fresh volume")
    Term.(const run $ img $ size_mb)

let cmd_info =
  let run img trace =
    with_fs ?trace img (fun dev fs ->
        let geo = fs.Squirrelfs.Fsctx.geo in
        let st = Squirrelfs.Mount.last_stats () in
        Printf.printf "device        %d bytes\n" (Device.size dev);
        Printf.printf "inodes        %d (%d free)\n" geo.Layout.Geometry.inode_count
          (Squirrelfs.Alloc.free_inode_count fs.Squirrelfs.Fsctx.alloc);
        Printf.printf "pages         %d (%d free)\n" geo.Layout.Geometry.page_count
          (Squirrelfs.Alloc.free_page_count fs.Squirrelfs.Fsctx.alloc);
        Printf.printf "index memory  %d bytes\n"
          (Squirrelfs.Index.footprint_bytes fs.Squirrelfs.Fsctx.index);
        if st.Squirrelfs.Mount.recovered then
          Printf.printf
            "recovery      ran (orphan inodes %d, pages %d, dentries %d; \
             renames completed %d, rolled back %d; link counts fixed %d)\n"
            st.Squirrelfs.Mount.orphan_inodes st.Squirrelfs.Mount.orphan_pages
            st.Squirrelfs.Mount.orphan_dentries
            st.Squirrelfs.Mount.completed_renames
            st.Squirrelfs.Mount.rolled_back_renames
            st.Squirrelfs.Mount.fixed_link_counts
        else Printf.printf "recovery      not needed (clean unmount)\n")
  in
  Cmd.v (Cmd.info "info" ~doc:"Volume geometry and utilization")
    Term.(const run $ img $ trace_arg)

let cmd_fsck =
  let run img trace =
    with_fs ?trace img (fun _dev fs ->
        match Squirrelfs.Fsck.check fs with
        | [] -> Printf.printf "consistent\n"
        | errs ->
            List.iter (fun e -> Printf.printf "violation: %s\n" e) errs;
            exit 2)
  in
  Cmd.v (Cmd.info "fsck" ~doc:"Check all consistency invariants")
    Term.(const run $ img $ trace_arg)

let cmd_tree =
  let run img trace =
    with_fs ?trace img (fun _dev fs ->
        let rec walk indent path =
          match Squirrelfs.readdir fs path with
          | Error _ -> ()
          | Ok names ->
              List.iter
                (fun n ->
                  let child = if path = "/" then "/" ^ n else path ^ "/" ^ n in
                  let st = or_die child (Squirrelfs.stat fs child) in
                  Printf.printf "%s%s%s\n" indent n
                    (match st.Vfs.Fs.kind with
                    | Vfs.Fs.Dir -> "/"
                    | Vfs.Fs.Symlink -> "@"
                    | Vfs.Fs.File -> Printf.sprintf " (%d)" st.Vfs.Fs.size);
                  if st.Vfs.Fs.kind = Vfs.Fs.Dir then
                    walk (indent ^ "  ") child)
                (List.sort compare names)
        in
        Printf.printf "/\n";
        walk "  " "/")
  in
  Cmd.v (Cmd.info "tree" ~doc:"Print the whole tree")
    Term.(const run $ img $ trace_arg)

let simple name doc f =
  let run img p trace = with_fs ?trace img (fun _dev fs -> f fs p) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ img $ path 1 $ trace_arg)

let cmd_ls =
  simple "ls" "List a directory" (fun fs p ->
      List.iter print_endline
        (List.sort compare (or_die p (Squirrelfs.readdir fs p))))

let cmd_mkdir =
  simple "mkdir" "Create a directory" (fun fs p ->
      or_die p (Squirrelfs.mkdir fs p))

let cmd_create =
  simple "create" "Create an empty file" (fun fs p ->
      or_die p (Squirrelfs.create fs p))

let cmd_rm =
  simple "rm" "Unlink a file" (fun fs p -> or_die p (Squirrelfs.unlink fs p))

let cmd_rmdir =
  simple "rmdir" "Remove an empty directory" (fun fs p ->
      or_die p (Squirrelfs.rmdir fs p))

let cmd_cat =
  simple "cat" "Print a file's contents" (fun fs p ->
      let st = or_die p (Squirrelfs.stat fs p) in
      print_string (or_die p (Squirrelfs.read fs p ~off:0 ~len:st.Vfs.Fs.size)))

let cmd_stat =
  simple "stat" "Show inode metadata" (fun fs p ->
      let st = or_die p (Squirrelfs.stat fs p) in
      Printf.printf "ino %d  kind %s  links %d  size %d  mode %o\n"
        st.Vfs.Fs.ino
        (Vfs.Fs.kind_to_string st.Vfs.Fs.kind)
        st.Vfs.Fs.links st.Vfs.Fs.size st.Vfs.Fs.mode)

let cmd_write =
  let data = Arg.(required & pos 2 (some string) None & info [] ~docv:"DATA") in
  let append =
    Arg.(value & flag & info [ "a"; "append" ] ~doc:"Append instead of overwrite")
  in
  let run img p data append trace =
    with_fs ?trace img (fun _dev fs ->
        (match Squirrelfs.stat fs p with
        | Error Vfs.Errno.ENOENT -> or_die p (Squirrelfs.create fs p)
        | Error e -> or_die p (Error e)
        | Ok _ -> ());
        let off =
          if append then (or_die p (Squirrelfs.stat fs p)).Vfs.Fs.size else 0
        in
        let n = or_die p (Squirrelfs.write fs p ~off data) in
        Printf.printf "wrote %d bytes at offset %d\n" n off)
  in
  Cmd.v (Cmd.info "write" ~doc:"Write data to a file (creates it)")
    Term.(const run $ img $ path 1 $ data $ append $ trace_arg)

let cmd_mv =
  let run img src dst trace =
    with_fs ?trace img (fun _dev fs -> or_die src (Squirrelfs.rename fs src dst))
  in
  Cmd.v (Cmd.info "mv" ~doc:"Atomic rename")
    Term.(const run $ img $ path 1 $ path 2 $ trace_arg)

let cmd_ln =
  let run img target link trace =
    with_fs ?trace img (fun _dev fs -> or_die link (Squirrelfs.link fs target link))
  in
  Cmd.v (Cmd.info "ln" ~doc:"Hard link")
    Term.(const run $ img $ path 1 $ path 2 $ trace_arg)

(* {2 Snapshots} *)

let name_arg n = Arg.(required & pos n (some string) None & info [] ~docv:"NAME")

let cmd_snapshot =
  let run img name trace =
    with_fs ?trace img (fun _dev fs ->
        let i = or_die name (Snap.snapshot fs name) in
        Printf.printf "snapshot %s: id %d slot %d (%d delta lines pinned)\n"
          name i.Snap.i_id i.Snap.i_slot
          (match Snap.pin_delta fs name with
          | Some (_, saved) -> List.length saved
          | None -> 0))
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Take a named crash-consistent snapshot (quiesce, capture the \
          delta view, seal a CRC-checked table entry; the pin persists \
          in a IMAGE.NAME.snap sidecar)")
    Term.(const run $ img $ name_arg 1 $ trace_arg)

let cmd_snapshots =
  let run img trace =
    with_fs ?trace img (fun _dev fs ->
        match Snap.list fs with
        | [] -> print_endline "no snapshots"
        | l ->
            List.iter
              (fun (i : Snap.info) ->
                Printf.printf "%-24s id %-4d slot %-3d epoch %-6d %s\n"
                  i.Snap.i_name i.Snap.i_id i.Snap.i_slot i.Snap.i_epoch
                  (if i.Snap.i_quarantined then "QUARANTINED"
                   else if i.Snap.i_pin_hash <> None then "pinned"
                   else "unpinned"))
              l)
  in
  Cmd.v (Cmd.info "snapshots" ~doc:"List the volume's snapshots")
    Term.(const run $ img $ trace_arg)

let cmd_snap_rm =
  let run img name trace =
    with_fs ?trace img (fun _dev fs -> or_die name (Snap.delete fs name))
  in
  Cmd.v (Cmd.info "snap-rm" ~doc:"Delete a snapshot (two fenced steps, never torn)")
    Term.(const run $ img $ name_arg 1 $ trace_arg)

let cmd_rollback =
  let run img name trace =
    with_fs ?trace img (fun dev fs ->
        or_die name (Snap.rollback fs name);
        Printf.printf "rolled back to %s (durable hash %Lx)\n" name
          (Device.durable_hash dev))
  in
  Cmd.v
    (Cmd.info "rollback"
       ~doc:
         "Atomically flip the whole volume back to a snapshot (redo-log \
          protected, fsck-validated, O(dirty lines))")
    Term.(const run $ img $ name_arg 1 $ trace_arg)

let cmd_clone =
  let out_arg = Arg.(required & pos 2 (some string) None & info [] ~docv:"OUT") in
  let run img name out trace =
    with_fs ?trace img (fun _dev fs ->
        let cfs = or_die name (Snap.clone fs name) in
        Squirrelfs.unmount cfs;
        save_image out cfs.Squirrelfs.Fsctx.dev;
        Printf.printf "cloned %s -> %s\n" name out)
  in
  Cmd.v
    (Cmd.info "clone"
       ~doc:
         "Mount a snapshot's pinned image as a writable fork and save it \
          as a new volume image (own allocator, fully isolated)")
    Term.(const run $ img $ name_arg 1 $ out_arg $ trace_arg)

let cmd_snap_diff =
  let run img a b trace =
    with_fs ?trace img (fun _dev fs ->
        let d = or_die (a ^ ".." ^ b) (Snap.diff fs a b) in
        List.iter
          (fun (off, la, lb) ->
            let hex s =
              String.concat "" (List.map (Printf.sprintf "%02x")
                  (List.init (min 8 (String.length s)) (fun i -> Char.code s.[i])))
            in
            Printf.printf "line @%-8d %s.. -> %s..\n" off (hex la) (hex lb))
          d;
        Printf.printf "%d line(s) differ\n" (List.length d))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Lines differing between two pinned snapshots (O(dirty lines of \
          either), not O(volume))")
    Term.(const run $ img $ name_arg 1 $ name_arg 2 $ trace_arg)

let cmd_scrub =
  let run img trace =
    with_fs ?trace img (fun _dev fs ->
        match Snap.scrub fs with
        | [] -> print_endline "no pinned snapshots to scrub"
        | l ->
            let bad = List.filter (fun (_, ok) -> not ok) l in
            List.iter
              (fun (n, ok) ->
                Printf.printf "%s: %s\n" n
                  (if ok then "intact" else "CORRUPT (quarantined)"))
              l;
            if bad <> [] then exit 2)
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify every pinned snapshot's content hash against its capture \
          record; mismatches are quarantined")
    Term.(const run $ img $ trace_arg)

let () =
  let doc = "SquirrelFS volumes in host image files" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "sqfs" ~doc)
          [
            cmd_mkfs; cmd_info; cmd_fsck; cmd_tree; cmd_ls; cmd_mkdir;
            cmd_create; cmd_rm; cmd_rmdir; cmd_cat; cmd_stat; cmd_write;
            cmd_mv; cmd_ln; cmd_snapshot; cmd_snapshots; cmd_snap_rm;
            cmd_rollback; cmd_clone; cmd_snap_diff; cmd_scrub;
          ]))
