(* faultcheck: media-reliability tester for SquirrelFS.

   Runs workloads under a programmable persistent-memory fault plan and
   checks the full detection pipeline: record checksums catch every
   injected metadata bit flip, the scrubber flags the damaged lines, the
   volume remounts degraded with the damage quarantined, and reads of
   quarantined objects return a clean EIO instead of crashing.

     faultcheck --smoke                      -- fast fixed workloads
     faultcheck --fuzz 20 --seed 7 --flips 3 -- random workloads
     faultcheck --torn 0.2 --stuck 0.1       -- torn/stuck-line crash images
     faultcheck --read-rate 0.001            -- transient read errors      *)

open Cmdliner

let smoke_workloads =
  Crashcheck.Workload.
    [
      [
        Create "/a";
        Write ("/a", 0, "hello, pm");
        Mkdir "/d";
        Create "/d/b";
        Write_atomic ("/d/b", 0, "atomic!!");
      ];
      [
        Mkdir "/d";
        Create "/d/x";
        Link ("/d/x", "/y");
        Symlink ("/d/x", "/s");
        Rename ("/d/x", "/z");
      ];
    ]

let run smoke fuzz seed ops flips read_rate torn stuck images media_images =
  let faults =
    try
      Faults.Plan.make ~seed ~bit_flips:flips ~read_error_rate:read_rate
        ~torn_line_rate:torn ~stuck_line_rate:stuck ()
    with Invalid_argument msg ->
      Printf.eprintf "faultcheck: %s (rates are probabilities in [0,1])\n" msg;
      exit 2
  in
  let workloads =
    if smoke then smoke_workloads
    else
      Crashcheck.Workload.random ~seed ~ops_per_workload:ops ~count:fuzz
  in
  Printf.printf
    "faultcheck: %d workloads, seed %d, %d flips/workload, rates \
     read=%g torn=%g stuck=%g\n\
     %!"
    (List.length workloads) seed flips read_rate torn stuck;
  let report =
    Crashcheck.Harness.run_suite ~max_images_per_fence:images
      ~media_images_per_fence:media_images ~faults workloads
  in
  Format.printf "%a@." Crashcheck.Harness.pp_report report;
  let ok = report.Crashcheck.Harness.violations = [] in
  if ok && flips > 0 && report.Crashcheck.Harness.faults_detected = 0 then
    print_endline "warning: no flips landed (empty workloads?)";
  if ok then print_endline "faultcheck: all injected faults handled";
  exit (if ok then 0 else 2)

let () =
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Fast fixed workload set")
  in
  let fuzz =
    Arg.(value & opt int 10 & info [ "fuzz" ] ~docv:"N" ~doc:"Random workloads")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Fault-plan seed") in
  let ops = Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Ops per fuzz workload") in
  let flips =
    Arg.(
      value & opt int 3
      & info [ "flips" ] ~doc:"Metadata bit flips injected per workload")
  in
  let read_rate =
    Arg.(
      value & opt float 0.
      & info [ "read-rate" ] ~doc:"P(transient read error) per bulk read")
  in
  let torn =
    Arg.(
      value & opt float 0.
      & info [ "torn" ] ~doc:"P(torn cache line) per dirty line at crash")
  in
  let stuck =
    Arg.(
      value & opt float 0.
      & info [ "stuck" ] ~doc:"P(stuck cache line) per dirty line at crash")
  in
  let images =
    Arg.(value & opt int 8 & info [ "images" ] ~doc:"Max crash images per fence")
  in
  let media_images =
    Arg.(
      value & opt int 4
      & info [ "media-images" ] ~doc:"Max faulty crash images per fence")
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "faultcheck"
             ~doc:"Media-fault injection testing of SquirrelFS")
          Term.(
            const run $ smoke $ fuzz $ seed $ ops $ flips $ read_rate $ torn
            $ stuck $ images $ media_images)))
