(* serve: the 9P/NFS-style request frontend under synthetic load.

     serve --clients 1000 --ops 50 -j 1 --seed 7
                      -- replay 1000 Zipf sessions, print the report
     serve -j 4       -- same traffic on 4 worker domains

   The report ends with the durable image hash: at -j 1 it is a
   per-seed determinism witness (bit-identical across runs and across
   hosts); at -j N interleaving makes the image run-dependent, so only
   throughput and the per-session counters are comparable. *)

open Cmdliner

let run clients ops batch jobs seed dirs files theta device_mb quiet =
  let cfg =
    {
      Serve.Loadgen.clients;
      ops_per_client = ops;
      batch;
      jobs;
      seed;
      dirs;
      files;
      theta;
      device_mb;
    }
  in
  let r = Serve.Loadgen.run cfg in
  Format.printf "@[<v>%a@]@." Serve.Loadgen.pp_report r;
  if not quiet then begin
    (* queue-depth histogram: sessions still waiting when a worker
       claimed one (depth buckets collapse to deciles of the client
       count for readability) *)
    let total = List.fold_left (fun a (_, n) -> a + n) 0 r.Serve.Loadgen.r_qdepth in
    Format.printf "queue depth at claim (%d claims):@." total;
    let bucket = max 1 (clients / 10) in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (d, n) ->
        let b = d / bucket in
        Hashtbl.replace tbl b (n + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
      r.Serve.Loadgen.r_qdepth;
    List.iter
      (fun (b, n) ->
        Format.printf "  [%4d..%4d) %d@." (b * bucket) ((b + 1) * bucket) n)
      (List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) tbl []))
  end;
  exit 0

let () =
  let clients =
    Arg.(value & opt int 1000 & info [ "clients" ] ~docv:"N" ~doc:"Simulated client sessions")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~docv:"N" ~doc:"Requests per session")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc:"Requests per submitted batch")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains claiming whole sessions from a shared cursor; \
             throughput scales with domains on multi-core hosts, the durable \
             hash is a determinism witness only at -j 1")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed") in
  let dirs =
    Arg.(value & opt int 8 & info [ "dirs" ] ~docv:"N" ~doc:"Directory universe size")
  in
  let files =
    Arg.(value & opt int 64 & info [ "files" ] ~docv:"N" ~doc:"File universe size")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew of the per-session hot set")
  in
  let device_mb =
    Arg.(value & opt int 32 & info [ "device-mb" ] ~doc:"Device size in MiB")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Skip the queue-depth histogram")
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "serve"
             ~doc:"Zipf load generator for the concurrent SquirrelFS request frontend")
          Term.(
            const run $ clients $ ops $ batch $ jobs $ seed $ dirs $ files $ theta
            $ device_mb $ quiet)))
